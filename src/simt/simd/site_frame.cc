/**
 * @file
 * AVX2 implementation of fused-site frame materialization (see
 * site_frame.h). This is the second -mavx2 translation unit next to
 * simd_exec.cc; CMake compiles it with SASSI_SIMD_AVX2 only when the
 * toolchain check passes, and the #else stub keeps non-AVX2 builds
 * on the scalar loop.
 */

#include "simt/simd/site_frame.h"

#if defined(SASSI_SIMD_AVX2)

#include <bit>
#include <cstring>
#include <immintrin.h>

#include "sass/reg.h"
#include "simt/simd/simd_vec.h"
#include "simt/site_fuse.h"
#include "simt/warp.h"

namespace sassi::simt::simd {

namespace {

/**
 * In-place 8x8 transpose of 32-bit elements: on entry r[j] holds
 * store j's values for 8 consecutive lanes; on exit r[k] holds lane
 * k's values for the 8 stores (the lane's adjacent frame slots).
 */
inline void
transpose8(__m256i r[8])
{
    __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
    __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
    __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
    __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
    __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
    __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
    __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
    __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
    __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
    __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
    __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
    __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
    __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
    __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
    __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
    __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
    r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
    r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
    r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
    r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
    r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
    r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
    r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
    r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

/** Values of one template store for lanes [8c, 8c+8). Mirrors the
 *  per-kind cases of the scalar loop exactly. */
inline u32x8
storeValues(const SiteStore &st, const SiteFrameCtx &ctx, int c)
{
    const Warp &warp = *ctx.warp;
    switch (st.kind) {
      case SiteStore::Kind::Const:
        return u32x8::splat(st.imm);
      case SiteStore::Kind::Reg:
        // Out-of-budget (and RZ) sources read 0, like Warp::reg.
        return st.reg < ctx.numRegs
                   ? u32x8::load(ctx.regs0 +
                                 static_cast<size_t>(st.reg) *
                                     sass::WarpSize +
                                 8 * static_cast<size_t>(c))
                   : u32x8::zero();
      case SiteStore::Kind::AddrLo:
        return u32x8::load(ctx.addrLo + 8 * c);
      case SiteStore::Kind::AddrHi:
        return u32x8::load(ctx.addrHi + 8 * c);
      case SiteStore::Kind::PredBits: {
        // predByte's per-lane gather over the predicate file becomes
        // one masked merge per predicate, whole chunk at a time.
        u32x8 v = u32x8::zero();
        for (int p = 0; p < sass::NumPred; ++p) {
            if (!(st.imm & (1u << p)))
                continue;
            v = v | (chunkMask(warp.predBits[static_cast<size_t>(p)],
                               c) &
                     u32x8::splat(1u << p));
        }
        return v;
      }
      case SiteStore::Kind::CCOrig:
        return chunkMask(warp.ccMask, c) & u32x8::splat(0x80u);
      case SiteStore::Kind::CCCarry:
        // carry is 0/1 per lane; the spilled byte is carry << 7.
        return {_mm256_slli_epi32(
            u32x8::load(ctx.carry + 8 * c).raw, 7)};
      case SiteStore::Kind::GuardFlag: {
        uint32_t bits = st.reg == sass::PT
                            ? 0xffffffffu
                            : warp.predBits[st.reg];
        if (st.neg)
            bits = ~bits;
        return chunkMask(bits, c) & u32x8::splat(1u);
      }
    }
    return u32x8::zero();
}

} // namespace

bool
storeSiteFrames(const SiteFrameCtx &ctx)
{
    const SiteRun &run = *ctx.run;
    // The fuse pass leaves the plan empty when the template is not
    // vectorizable.
    if (run.groups.empty())
        return false;

    // Lane-invariant windows first: every written slot is a Const
    // store, so the compile-time-baked row is the value for *all*
    // lanes — one (masked) 256-bit store per active lane, no gather
    // or transpose. The group mask keeps gap slots' previous bytes,
    // like the scalar loop; masked-off elements of a maskstore never
    // touch (or fault on) memory, so a window may overhang the frame.
    for (const SiteSlotGroup &g : run.groups) {
        if (!g.constOnly)
            continue;
        const __m256i row = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(g.constVal));
        const bool full = g.mask == 0xff;
        const __m256i mv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(g.maskVec));
        for (uint32_t rest = ctx.active; rest;) {
            const int lane = std::countr_zero(rest);
            rest &= rest - 1;
            uint8_t *dst =
                (g.abs ? ctx.lmem0 +
                             static_cast<size_t>(lane) * ctx.lstride
                       : ctx.fptr[lane]) +
                g.base;
            if (full)
                _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst),
                                    row);
            else
                _mm256_maskstore_epi32(reinterpret_cast<int *>(dst),
                                       mv, row);
        }
    }

    for (int c = 0; c < 4; ++c) {
        const uint32_t cbits = (ctx.active >> (8 * c)) & 0xffu;
        if (!cbits)
            continue;
        // Per lane-varying 8-slot window: evaluate the surviving
        // (last-wins) store of each slot for the chunk's 8 lanes
        // straight off the SoA register file — shadowed stores are
        // dead and never computed — then transpose once and write
        // each lane's 32-byte span with one store.
        for (const SiteSlotGroup &g : run.groups) {
            if (g.constOnly)
                continue;
            __m256i rows[8];
            if (g.regConst) {
                // Reg/Const-only window: load-or-splat per slot, no
                // per-kind dispatch (the dominant window shape).
                for (int j = 0; j < 8; ++j)
                    rows[j] =
                        g.regIdx[j] != 0xff
                            ? _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i *>(
                                      ctx.regs0 +
                                      static_cast<size_t>(
                                          g.regIdx[j]) *
                                          sass::WarpSize +
                                      8 * static_cast<size_t>(c)))
                            : _mm256_set1_epi32(static_cast<int32_t>(
                                  g.constVal[j]));
            } else {
                for (int j = 0; j < 8; ++j)
                    rows[j] =
                        g.rowSrc[j] == 0xff
                            ? _mm256_setzero_si256()
                            : storeValues(run.stores[g.rowSrc[j]],
                                          ctx, c)
                                  .raw;
            }
            transpose8(rows);

            const bool full = g.mask == 0xff;
            const __m256i mv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(g.maskVec));
            uint8_t *const base_abs =
                ctx.lmem0 + static_cast<size_t>(8 * c) * ctx.lstride;
            for (int k = 0; k < 8; ++k) {
                if (!(cbits & (1u << k)))
                    continue;
                const int lane = 8 * c + k;
                uint8_t *dst =
                    (g.abs ? base_abs +
                                 static_cast<size_t>(k) * ctx.lstride
                           : ctx.fptr[lane]) +
                    g.base;
                if (full)
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(dst), rows[k]);
                else
                    _mm256_maskstore_epi32(
                        reinterpret_cast<int *>(dst), mv, rows[k]);
            }
        }
    }
    return true;
}

} // namespace sassi::simt::simd

#else // !SASSI_SIMD_AVX2

namespace sassi::simt::simd {

bool
storeSiteFrames(const SiteFrameCtx &)
{
    return false; // Scalar fallback: caller runs the store loop.
}

} // namespace sassi::simt::simd

#endif // SASSI_SIMD_AVX2
