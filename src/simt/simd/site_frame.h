/**
 * @file
 * SIMD tier for phase-A frame materialization of fused
 * instrumentation sites (simt/site_fuse.h).
 *
 * The scalar path in Executor::enterSiteRun walks every template
 * store lane by lane: ~16 stores x 32 lanes of switch + memcpy per
 * dispatch dominates instrumented run time. The SoA register file
 * makes each store's 32 lane values one contiguous span (Kind::Reg)
 * or a pure function of lane bitmasks (PredBits/CC/GuardFlag), so
 * this tier computes each store's values 8 lanes at a time, runs an
 * 8x8 transpose, and writes each lane's adjacent frame slots with a
 * single (masked) 256-bit store.
 *
 * Compiled with -mavx2 only in site_frame.cc (same single-TU pattern
 * as simd_exec.cc); on non-AVX2 builds storeSiteFrames() returns
 * false and the caller keeps the scalar loop.
 */

#ifndef SASSI_SIMT_SIMD_SITE_FRAME_H
#define SASSI_SIMT_SIMD_SITE_FRAME_H

#include <cstddef>
#include <cstdint>

namespace sassi::simt {
struct SiteRun;
struct Warp;
} // namespace sassi::simt

namespace sassi::simt::simd {

/** Everything phase-A materialization reads, captured by the caller
 *  (Executor::enterSiteRun) after its per-lane precomputation. */
struct SiteFrameCtx
{
    const SiteRun *run = nullptr;
    const Warp *warp = nullptr;
    uint32_t active = 0;
    /** Per-lane frame base inside host local memory (active lanes). */
    uint8_t *const *fptr = nullptr;
    /** Recomputed memory-operand address words; zero-filled at
     *  inactive lanes so whole-chunk vector loads stay defined. */
    const uint32_t *addrLo = nullptr;
    const uint32_t *addrHi = nullptr;
    /** Carry of the low address add, 0 or 1 per lane. */
    const uint32_t *carry = nullptr;
    /** Lane 0's local memory; lane rows stride by lstride bytes. */
    uint8_t *lmem0 = nullptr;
    size_t lstride = 0;
    /** Register file base (register-major) and register budget. */
    const uint32_t *regs0 = nullptr;
    int numRegs = 0;
};

/**
 * Materialize every template store of ctx.run for all active lanes.
 * Writes exactly the bytes the scalar store loop writes.
 *
 * @return true when the AVX2 tier handled the frame; false when it
 *         is compiled out (caller must run the scalar loop).
 */
bool storeSiteFrames(const SiteFrameCtx &ctx);

} // namespace sassi::simt::simd

#endif // SASSI_SIMT_SIMD_SITE_FRAME_H
