/**
 * @file
 * Thin typed wrapper over AVX2 256-bit vectors for the SIMD
 * interpreter tier (simdjson's haswell/simd.h idiom: a value type
 * around __m256i with the handful of operations the exec functions
 * need, so the per-op code reads like the scalar lane loop it
 * replaces).
 *
 * A warp is 32 lanes; one u32x8 covers 8 of them, so every warp
 * operand is 4 chunks. The register file is register-major
 * (simt/warp.h), so chunk c of register r is a plain unaligned load
 * from laneSpan(r) + 8 * c. Predicates and the exec mask are 32-bit
 * lane bitmasks; chunkMask() expands 8 of those bits into a lane
 * mask vector for blends and masked stores, and u32x8::bitmask()
 * compresses a compare result back into 8 bits.
 *
 * Only compiled into simd_exec.cc (the lone -mavx2 translation
 * unit); everything here is header-only and inline.
 */

#ifndef SASSI_SIMT_SIMD_SIMD_VEC_H
#define SASSI_SIMT_SIMD_SIMD_VEC_H

#if defined(SASSI_SIMD_AVX2)

#include <cstdint>
#include <immintrin.h>

namespace sassi::simt::simd {

/** Eight 32-bit lanes of a warp operand. */
struct u32x8
{
    __m256i raw;

    static u32x8
    load(const uint32_t *p)
    {
        return {_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p))};
    }

    static u32x8
    splat(uint32_t v)
    {
        return {_mm256_set1_epi32(static_cast<int>(v))};
    }

    static u32x8 zero() { return {_mm256_setzero_si256()}; }

    void
    store(uint32_t *p) const
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), raw);
    }

    /** Store only the lanes whose mask element has its sign bit set. */
    void
    maskstore(uint32_t *p, u32x8 lane_mask) const
    {
        _mm256_maskstore_epi32(reinterpret_cast<int *>(p),
                               lane_mask.raw, raw);
    }

    /** Sign bit of each lane, compressed to 8 bits (compare results). */
    uint32_t
    bitmask() const
    {
        return static_cast<uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(raw)));
    }

    friend u32x8
    operator+(u32x8 a, u32x8 b)
    {
        return {_mm256_add_epi32(a.raw, b.raw)};
    }

    friend u32x8
    operator&(u32x8 a, u32x8 b)
    {
        return {_mm256_and_si256(a.raw, b.raw)};
    }

    friend u32x8
    operator|(u32x8 a, u32x8 b)
    {
        return {_mm256_or_si256(a.raw, b.raw)};
    }

    friend u32x8
    operator^(u32x8 a, u32x8 b)
    {
        return {_mm256_xor_si256(a.raw, b.raw)};
    }

    u32x8
    andnot(u32x8 b) const // this & ~b
    {
        return {_mm256_andnot_si256(b.raw, raw)};
    }

    /** Low 32 bits of the per-lane products (uint32 wrap multiply). */
    u32x8
    mullo(u32x8 b) const
    {
        return {_mm256_mullo_epi32(raw, b.raw)};
    }

    u32x8
    minS(u32x8 b) const
    {
        return {_mm256_min_epi32(raw, b.raw)};
    }

    u32x8
    maxS(u32x8 b) const
    {
        return {_mm256_max_epi32(raw, b.raw)};
    }

    /**
     * Per-lane shifts with variable counts. The v*v intrinsics
     * already implement the SASS-visible clamping the scalar path
     * spells out: logical shifts with a count >= 32 produce 0, and
     * the arithmetic shift sign-fills (== a >> 31) for any count
     * over 31, exactly `a >> min(b, 31)`.
     */
    u32x8
    shl(u32x8 counts) const
    {
        return {_mm256_sllv_epi32(raw, counts.raw)};
    }

    u32x8
    shrU(u32x8 counts) const
    {
        return {_mm256_srlv_epi32(raw, counts.raw)};
    }

    u32x8
    shrS(u32x8 counts) const
    {
        return {_mm256_srav_epi32(raw, counts.raw)};
    }

    u32x8
    cmpeq(u32x8 b) const
    {
        return {_mm256_cmpeq_epi32(raw, b.raw)};
    }

    /** Signed greater-than (all-ones lanes where this > b). */
    u32x8
    cmpgtS(u32x8 b) const
    {
        return {_mm256_cmpgt_epi32(raw, b.raw)};
    }

    /** Lane-wise select: mask sign bit set -> a, clear -> b. */
    static u32x8
    blend(u32x8 lane_mask, u32x8 a, u32x8 b)
    {
        return {_mm256_blendv_epi8(b.raw, a.raw, lane_mask.raw)};
    }
};

/** Eight lanes viewed as IEEE-754 single floats (FADD/FMUL/FFMA). */
struct f32x8
{
    __m256 raw;

    static f32x8
    fromBits(u32x8 bits)
    {
        return {_mm256_castsi256_ps(bits.raw)};
    }

    u32x8
    bits() const
    {
        return {_mm256_castps_si256(raw)};
    }

    /** int32 lanes -> float lanes, round-to-nearest-even (I2F). */
    static f32x8
    fromI32(u32x8 v)
    {
        return {_mm256_cvtepi32_ps(v.raw)};
    }

    friend f32x8
    operator+(f32x8 a, f32x8 b)
    {
        return {_mm256_add_ps(a.raw, b.raw)};
    }

    friend f32x8
    operator*(f32x8 a, f32x8 b)
    {
        return {_mm256_mul_ps(a.raw, b.raw)};
    }
};

/**
 * Expand bits [8c, 8c+8) of a 32-lane bitmask into a lane mask
 * vector (all-ones where the bit is set) for blends / maskstore.
 */
inline u32x8
chunkMask(uint32_t lane_bits, int c)
{
    const __m256i sel =
        _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    __m256i byte = _mm256_set1_epi32(
        static_cast<int>((lane_bits >> (8 * c)) & 0xff));
    return {_mm256_cmpeq_epi32(_mm256_and_si256(byte, sel), sel)};
}

} // namespace sassi::simt::simd

#endif // SASSI_SIMD_AVX2

#endif // SASSI_SIMT_SIMD_SIMD_VEC_H
