/**
 * @file
 * Lane-vectorized exec functions for the superblock fast path.
 *
 * The scalar micro-op tier (simt/decode.cc) executes each ALU uop
 * with a per-lane loop; this tier executes the same uop for all 32
 * lanes at once with AVX2 — four 256-bit chunks per operand over
 * the register-major register file, predicates and the exec mask as
 * 32-bit lane bitmasks (simd/simd_vec.h). pickSimdFn() mirrors
 * pickAluFn(): it returns a function with the exact AluFn signature
 * and bit-identical semantics, or null when the op stays on the
 * scalar tier (CC-consuming adds, POPC/FLO, float min/max and
 * conversions with NaN edge cases, lane-id-dependent S2R/L2G).
 *
 * The implementation file is the only translation unit compiled
 * with -mavx2 (gated by the SASSI_SIMD_AVX2 configure check); on
 * hosts without that flag this header still compiles and
 * pickSimdFn() returns null for everything. Whether vector
 * functions are *called* is a launch-time decision
 * (resolveSimd × cpuHasAvx2, simt/decode.h), so a binary built
 * with AVX2 still runs on machines without it.
 */

#ifndef SASSI_SIMT_SIMD_SIMD_EXEC_H
#define SASSI_SIMT_SIMD_SIMD_EXEC_H

#include "simt/decode.h"

namespace sassi::simt::simd {

/** @return whether this machine can execute the AVX2 tier. */
bool cpuHasAvx2();

/**
 * Select the lane-vectorized exec function for an ALU-class
 * instruction, or null when the op executes on the scalar tier.
 * Only called for instructions pickAluFn() accepted, so operand
 * registers are already proven inside the kernel's budget.
 */
AluFn pickSimdFn(const ir::Kernel &kernel,
                 const sass::Instruction &ins);

} // namespace sassi::simt::simd

#endif // SASSI_SIMT_SIMD_SIMD_EXEC_H
