#include "simt/simd/simd_exec.h"

#include "simt/warp.h"

#if defined(SASSI_SIMD_AVX2)
#include "simt/simd/simd_vec.h"
#endif

namespace sassi::simt::simd {

using namespace sass;

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

#if !defined(SASSI_SIMD_AVX2)

// Host compiler can't target AVX2: every op stays on the scalar
// tier. (Distinct from a build that *can* target it running on a
// machine that lacks it — that case is handled at launch time by
// cpuHasAvx2().)
AluFn
pickSimdFn(const ir::Kernel &, const Instruction &)
{
    return nullptr;
}

#else // SASSI_SIMD_AVX2

namespace {

constexpr int NumChunks = WarpSize / 8;

/** Chunk c of a source register (RZ reads a zero vector). */
inline u32x8
loadReg(const Warp &warp, RegId r, int c)
{
    if (r == RZ)
        return u32x8::zero();
    return u32x8::load(warp.laneSpan(r) + 8 * c);
}

template <bool BImm>
inline u32x8
loadSrcB(const Warp &warp, const Instruction &ins, int c)
{
    if constexpr (BImm)
        return u32x8::splat(static_cast<uint32_t>(ins.imm));
    else
        return loadReg(warp, ins.srcB, c);
}

/** The 32-lane value of predicate p as a bitmask (PT reads all-on). */
inline uint32_t
predMask(const Warp &warp, PredId p, bool neg)
{
    uint32_t m = p == PT ? ~0u
                         : warp.predBits[static_cast<size_t>(p)];
    return neg ? ~m : m;
}

/**
 * Run `fn(chunk) -> u32x8` for the four chunks of the destination
 * register, storing each result under the exec mask. The full-mask
 * case (the overwhelmingly common one inside a converged
 * superblock) uses plain stores. Chunk c is stored before chunk
 * c + 1 of any source is loaded, but chunks of one span never
 * overlap, so dst aliasing a source is safe.
 */
template <typename Fn>
inline void
storeChunks(Warp &warp, RegId dst, uint32_t exec, Fn &&fn)
{
    uint32_t *out = warp.laneSpan(dst);
    if (exec == ~0u) {
        for (int c = 0; c < NumChunks; ++c)
            fn(c).store(out + 8 * c);
    } else {
        for (int c = 0; c < NumChunks; ++c)
            fn(c).maskstore(out + 8 * c, chunkMask(exec, c));
    }
}

/** Write a 32-lane predicate result under the exec mask. */
inline void
storePred(Warp &warp, PredId p, uint32_t value, uint32_t exec)
{
    if (p == PT)
        return; // setPred(PT) discards.
    uint32_t &bits = warp.predBits[static_cast<size_t>(p)];
    bits = (bits & ~exec) | (value & exec);
}

void
vNop(const UopCtx &, Warp &, const Instruction &, uint32_t)
{
}

void
vMov(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    storeChunks(warp, ins.dst, exec,
                [&](int c) { return loadReg(warp, ins.srcA, c); });
}

void
vMov32i(const UopCtx &, Warp &warp, const Instruction &ins,
        uint32_t exec)
{
    const u32x8 imm = u32x8::splat(static_cast<uint32_t>(ins.imm));
    storeChunks(warp, ins.dst, exec, [&](int) { return imm; });
}

template <bool BImm>
void
vSel(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    const uint32_t p = predMask(warp, ins.pSrc, ins.pSrcNeg);
    storeChunks(warp, ins.dst, exec, [&](int c) {
        return u32x8::blend(chunkMask(p, c),
                            loadReg(warp, ins.srcA, c),
                            loadSrcB<BImm>(warp, ins, c));
    });
}

template <bool BImm>
void
vIadd(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    storeChunks(warp, ins.dst, exec, [&](int c) {
        return loadReg(warp, ins.srcA, c) +
               loadSrcB<BImm>(warp, ins, c);
    });
}

template <bool BImm>
void
vImul(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    storeChunks(warp, ins.dst, exec, [&](int c) {
        return loadReg(warp, ins.srcA, c)
            .mullo(loadSrcB<BImm>(warp, ins, c));
    });
}

template <bool BImm>
void
vImad(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    storeChunks(warp, ins.dst, exec, [&](int c) {
        return loadReg(warp, ins.srcA, c)
                   .mullo(loadSrcB<BImm>(warp, ins, c)) +
               loadReg(warp, ins.srcC, c);
    });
}

template <bool BImm, bool IsMin>
void
vImnmx(const UopCtx &, Warp &warp, const Instruction &ins,
       uint32_t exec)
{
    storeChunks(warp, ins.dst, exec, [&](int c) {
        u32x8 a = loadReg(warp, ins.srcA, c);
        u32x8 b = loadSrcB<BImm>(warp, ins, c);
        return IsMin ? a.minS(b) : a.maxS(b);
    });
}

template <bool BImm>
void
vShl(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    storeChunks(warp, ins.dst, exec, [&](int c) {
        return loadReg(warp, ins.srcA, c)
            .shl(loadSrcB<BImm>(warp, ins, c));
    });
}

template <bool BImm>
void
vShrU(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    storeChunks(warp, ins.dst, exec, [&](int c) {
        return loadReg(warp, ins.srcA, c)
            .shrU(loadSrcB<BImm>(warp, ins, c));
    });
}

template <bool BImm>
void
vShrS(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    storeChunks(warp, ins.dst, exec, [&](int c) {
        return loadReg(warp, ins.srcA, c)
            .shrS(loadSrcB<BImm>(warp, ins, c));
    });
}

template <bool BImm, LogicOp Op>
void
vLop(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    storeChunks(warp, ins.dst, exec, [&](int c) -> u32x8 {
        if constexpr (Op == LogicOp::And)
            return loadReg(warp, ins.srcA, c) &
                   loadSrcB<BImm>(warp, ins, c);
        else if constexpr (Op == LogicOp::Or)
            return loadReg(warp, ins.srcA, c) |
                   loadSrcB<BImm>(warp, ins, c);
        else if constexpr (Op == LogicOp::Xor)
            return loadReg(warp, ins.srcA, c) ^
                   loadSrcB<BImm>(warp, ins, c);
        else if constexpr (Op == LogicOp::PassB)
            return loadSrcB<BImm>(warp, ins, c);
        else // Not
            return loadReg(warp, ins.srcA, c) ^
                   u32x8::splat(~0u);
    });
}

/**
 * ISETP: per-chunk compares compress to a 32-lane result bitmask
 * (movemask of the compare's all-ones lanes), and the combine with
 * the source predicate plus the masked write-back are then plain
 * 32-bit mask arithmetic — the payoff of bitmask predicates.
 * Unsigned compares bias both operands by 0x80000000 and reuse the
 * signed compare (the scalar path's zero-extended int64 compare is
 * exactly unsigned 32-bit).
 */
template <bool BImm, bool Signed>
void
vIsetp(const UopCtx &, Warp &warp, const Instruction &ins,
       uint32_t exec)
{
    const u32x8 bias = u32x8::splat(0x80000000u);
    uint32_t gt = 0, eq = 0;
    for (int c = 0; c < NumChunks; ++c) {
        u32x8 a = loadReg(warp, ins.srcA, c);
        u32x8 b = loadSrcB<BImm>(warp, ins, c);
        if constexpr (!Signed) {
            a = a ^ bias;
            b = b ^ bias;
        }
        gt |= a.cmpgtS(b).bitmask() << (8 * c);
        eq |= a.cmpeq(b).bitmask() << (8 * c);
    }
    uint32_t result;
    switch (ins.cmp) {
      case CmpOp::LT: result = ~(gt | eq); break;
      case CmpOp::EQ: result = eq; break;
      case CmpOp::LE: result = ~gt; break;
      case CmpOp::GT: result = gt; break;
      case CmpOp::NE: result = ~eq; break;
      case CmpOp::GE: result = gt | eq; break;
      default: result = 0; break;
    }
    result &= predMask(warp, ins.pSrc, ins.pSrcNeg);
    storePred(warp, ins.pDst, result, exec);
}

/** PSETP: 32 lanes of pure predicate logic in one mask expression. */
void
vPsetp(const UopCtx &, Warp &warp, const Instruction &ins,
       uint32_t exec)
{
    const uint32_t pa = predMask(warp, ins.pSrc, ins.pSrcNeg);
    const uint32_t pb =
        predMask(warp, static_cast<PredId>(ins.imm & 7),
                 (ins.imm & 8) != 0);
    uint32_t result;
    switch (ins.logic) {
      case LogicOp::And: result = pa & pb; break;
      case LogicOp::Or: result = pa | pb; break;
      case LogicOp::Xor: result = pa ^ pb; break;
      case LogicOp::PassB: result = pb; break;
      case LogicOp::Not: result = ~pa; break;
      default: result = 0; break;
    }
    storePred(warp, ins.pDst, result, exec);
}

/*
 * Float ops. FADD/FMUL single-instruction results are IEEE-defined,
 * so add_ps/mul_ps are bit-identical to the scalar expressions.
 * FFMA must stay mul-then-add with two roundings: the scalar tier
 * is compiled without FMA codegen, and intrinsics are never
 * contracted, so the vector result matches. (std::fmin/fmax NaN
 * semantics and F2I saturation don't map onto single AVX2 ops —
 * FMNMX/MUFU/F2I stay scalar.)
 */

template <bool BImm>
void
vFadd(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    storeChunks(warp, ins.dst, exec, [&](int c) {
        return (f32x8::fromBits(loadReg(warp, ins.srcA, c)) +
                f32x8::fromBits(loadSrcB<BImm>(warp, ins, c)))
            .bits();
    });
}

template <bool BImm>
void
vFmul(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    storeChunks(warp, ins.dst, exec, [&](int c) {
        return (f32x8::fromBits(loadReg(warp, ins.srcA, c)) *
                f32x8::fromBits(loadSrcB<BImm>(warp, ins, c)))
            .bits();
    });
}

template <bool BImm>
void
vFfma(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    storeChunks(warp, ins.dst, exec, [&](int c) {
        return (f32x8::fromBits(loadReg(warp, ins.srcA, c)) *
                    f32x8::fromBits(loadSrcB<BImm>(warp, ins, c)) +
                f32x8::fromBits(loadReg(warp, ins.srcC, c)))
            .bits();
    });
}

/**
 * FSETP compare predicates matching the C++ operators of the scalar
 * path: ordered-quiet for LT/EQ/LE/GT/GE (false when unordered) and
 * unordered-quiet for NE (a != b is true when either is NaN).
 */
inline uint32_t
fcmpBits(CmpOp op, __m256 a, __m256 b)
{
    __m256 m;
    switch (op) {
      case CmpOp::LT: m = _mm256_cmp_ps(a, b, _CMP_LT_OQ); break;
      case CmpOp::EQ: m = _mm256_cmp_ps(a, b, _CMP_EQ_OQ); break;
      case CmpOp::LE: m = _mm256_cmp_ps(a, b, _CMP_LE_OQ); break;
      case CmpOp::GT: m = _mm256_cmp_ps(a, b, _CMP_GT_OQ); break;
      case CmpOp::NE: m = _mm256_cmp_ps(a, b, _CMP_NEQ_UQ); break;
      case CmpOp::GE: m = _mm256_cmp_ps(a, b, _CMP_GE_OQ); break;
      default: m = _mm256_setzero_ps(); break;
    }
    return static_cast<uint32_t>(_mm256_movemask_ps(m));
}

template <bool BImm>
void
vFsetp(const UopCtx &, Warp &warp, const Instruction &ins,
       uint32_t exec)
{
    uint32_t result = 0;
    for (int c = 0; c < NumChunks; ++c) {
        __m256 a =
            f32x8::fromBits(loadReg(warp, ins.srcA, c)).raw;
        __m256 b =
            f32x8::fromBits(loadSrcB<BImm>(warp, ins, c)).raw;
        result |= fcmpBits(ins.cmp, a, b) << (8 * c);
    }
    result &= predMask(warp, ins.pSrc, ins.pSrcNeg);
    storePred(warp, ins.pDst, result, exec);
}

void
vI2f(const UopCtx &, Warp &warp, const Instruction &ins, uint32_t exec)
{
    storeChunks(warp, ins.dst, exec, [&](int c) {
        return f32x8::fromI32(loadReg(warp, ins.srcA, c)).bits();
    });
}

} // namespace

AluFn
pickSimdFn(const ir::Kernel &, const Instruction &ins)
{
    // Register-writing ops with an RZ destination would discard;
    // rare enough to leave to the scalar tier's wr() check.
    const bool dst_rz = ins.dst == RZ;
    const bool bi = ins.bIsImm;
    switch (ins.op) {
      case Opcode::NOP:
      case Opcode::MEMBAR:
        return vNop;
      case Opcode::MOV:
        return dst_rz ? nullptr : vMov;
      case Opcode::MOV32I:
        return dst_rz ? nullptr : vMov32i;
      case Opcode::SEL:
        if (dst_rz)
            return nullptr;
        return bi ? vSel<true> : vSel<false>;
      case Opcode::IADD:
      case Opcode::IADD32I:
        // The carry chain (X/CC variants) stays scalar: per-lane
        // carry-out needs a widening add the 8x32 tier doesn't
        // model, and CC-threaded adds are rare inside superblocks.
        if (dst_rz || ins.useCC || ins.setCC)
            return nullptr;
        return bi ? vIadd<true> : vIadd<false>;
      case Opcode::IMUL:
        if (dst_rz)
            return nullptr;
        return bi ? vImul<true> : vImul<false>;
      case Opcode::IMAD:
        if (dst_rz)
            return nullptr;
        return bi ? vImad<true> : vImad<false>;
      case Opcode::IMNMX:
        if (dst_rz)
            return nullptr;
        if (ins.cmp == CmpOp::LT)
            return bi ? vImnmx<true, true> : vImnmx<false, true>;
        return bi ? vImnmx<true, false> : vImnmx<false, false>;
      case Opcode::SHL:
        if (dst_rz)
            return nullptr;
        return bi ? vShl<true> : vShl<false>;
      case Opcode::SHR:
        if (dst_rz)
            return nullptr;
        if (ins.sExt)
            return bi ? vShrS<true> : vShrS<false>;
        return bi ? vShrU<true> : vShrU<false>;
      case Opcode::LOP:
        if (dst_rz)
            return nullptr;
        switch (ins.logic) {
          case LogicOp::And:
            return bi ? vLop<true, LogicOp::And>
                      : vLop<false, LogicOp::And>;
          case LogicOp::Or:
            return bi ? vLop<true, LogicOp::Or>
                      : vLop<false, LogicOp::Or>;
          case LogicOp::Xor:
            return bi ? vLop<true, LogicOp::Xor>
                      : vLop<false, LogicOp::Xor>;
          case LogicOp::PassB:
            return bi ? vLop<true, LogicOp::PassB>
                      : vLop<false, LogicOp::PassB>;
          case LogicOp::Not:
            return bi ? vLop<true, LogicOp::Not>
                      : vLop<false, LogicOp::Not>;
        }
        return nullptr;
      case Opcode::ISETP:
        if (ins.sExt)
            return bi ? vIsetp<true, true> : vIsetp<false, true>;
        return bi ? vIsetp<true, false> : vIsetp<false, false>;
      case Opcode::PSETP:
        return vPsetp;
      case Opcode::FADD:
        if (dst_rz)
            return nullptr;
        return bi ? vFadd<true> : vFadd<false>;
      case Opcode::FMUL:
        if (dst_rz)
            return nullptr;
        return bi ? vFmul<true> : vFmul<false>;
      case Opcode::FFMA:
        if (dst_rz)
            return nullptr;
        return bi ? vFfma<true> : vFfma<false>;
      case Opcode::FSETP:
        return bi ? vFsetp<true> : vFsetp<false>;
      case Opcode::I2F:
        return dst_rz ? nullptr : vI2f;
      default:
        // POPC/FLO (no AVX2 per-lane popcount/clz), FMNMX/MUFU/F2I
        // (NaN and saturation semantics), P2R/R2P (pred-file
        // transposes), S2R/L2G (lane-id arithmetic), and the CC
        // carry chain all stay on the scalar tier.
        return nullptr;
    }
}

#endif // SASSI_SIMD_AVX2

} // namespace sassi::simt::simd
