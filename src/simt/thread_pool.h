/**
 * @file
 * A persistent worker pool for parallel CTA execution.
 *
 * Kernel launches schedule their CTA chunks across workers (see
 * Executor::run); spawning threads per launch would dominate the
 * small grids the paper's workloads use, so one process-wide pool is
 * created lazily and reused by every launch. parallelFor() is the
 * only entry point: it runs a job index space on the pool plus the
 * calling thread and blocks until every index has finished, so
 * callers never observe partially-executed launches.
 *
 * Job claiming is lock-free: workers race a generation-tagged
 * atomic cursor instead of taking the pool mutex per job, so a
 * finely-chunked batch never serializes on the pool lock. The
 * mutex only guards batch setup, worker wakeup, and growth.
 */

#ifndef SASSI_SIMT_THREAD_POOL_H
#define SASSI_SIMT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sassi::simt {

/** A fixed set of persistent worker threads executing index jobs. */
class ThreadPool
{
  public:
    /**
     * Hard cap on pool workers. Requests beyond it are clamped
     * (warned once) — resolveSimThreads applies the same cap so a
     * launch never plans more shards than the pool can run.
     */
    static constexpr int kMaxWorkers = 64;

    /**
     * Construct a pool of `threads` workers (not counting callers
     * that join in through parallelFor).
     */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Run fn(i) for every i in [0, jobs), distributing indices over
     * the pool's workers and the calling thread; blocks until all
     * jobs complete. The pool grows (up to kMaxWorkers) when jobs
     * exceeds workerCount() + 1, so an explicit numThreads request
     * always gets real OS threads even on machines with fewer cores
     * — that is what lets TSan and the determinism tests exercise
     * genuine cross-thread interleavings anywhere. fn must not throw
     * (launch workers convert SimFaults into chunk outcomes before
     * returning). Reentrant calls (parallelFor from inside a job)
     * are not supported, but concurrent calls from distinct threads
     * are: batches serialize on an internal mutex, so fuzz-campaign
     * shards can each drive multi-worker launches at once.
     */
    void parallelFor(int jobs, const std::function<void(int)> &fn);

    /** @return the number of pool worker threads. */
    int workerCount() const { return static_cast<int>(workers_.size()); }

    /**
     * The process-wide pool, created on first use with
     * hardware_concurrency() - 1 workers (the calling thread
     * participates in parallelFor, giving hardware_concurrency-way
     * parallelism in total).
     */
    static ThreadPool &global();

  private:
    void workerMain();
    /** Grow the pool to at least `target` workers (capped). */
    void ensureWorkers(int target);
    /**
     * Claim and run job indices of batch `generation` until it
     * drains or a newer batch supersedes it. fn/jobs are the batch
     * fields as read under the mutex when `generation` was observed,
     * so a straggler can never touch a later batch's closure.
     */
    void drainBatch(uint32_t generation,
                    const std::function<void(int)> *fn, int jobs);

    std::mutex mutex_;
    /** Serializes whole parallelFor batches across calling threads
     *  (held for a batch's full duration; never taken by workers). */
    std::mutex batch_mutex_;
    std::condition_variable work_cv_; //!< Signals a new batch.
    std::condition_variable done_cv_; //!< Signals batch completion.
    // Batch setup, written under mutex_ by parallelFor and read
    // under mutex_ by waking workers.
    const std::function<void(int)> *fn_ = nullptr;
    int jobs_ = 0;
    uint32_t generation_ = 0;
    bool shutdown_ = false;
    bool clamp_warned_ = false;

    /**
     * Generation-tagged job cursor: (generation << 32) | next index.
     * Claiming a job is one CAS; the tag makes a straggler from a
     * finished batch fail its CAS instead of stealing (and
     * miscounting) a job from the batch that replaced it.
     */
    std::atomic<uint64_t> cursor_{0};
    std::atomic<int> pending_{0}; //!< Jobs claimed but not finished.
    std::vector<std::thread> workers_;
};

/**
 * Resolve a LaunchOptions::numThreads request into a worker count:
 * 0 means auto (the SASSI_SIM_THREADS environment variable when
 * set, otherwise hardware concurrency); the result is clamped to
 * [1, ctas] since a worker with no CTAs is pure overhead, and to
 * ThreadPool::kMaxWorkers, which is all the pool will ever run.
 */
int resolveSimThreads(int requested, uint64_t ctas);

} // namespace sassi::simt

#endif // SASSI_SIMT_THREAD_POOL_H
