/**
 * @file
 * The simulated GPU device and its host-side runtime API.
 *
 * Stands in for the CUDA runtime + a Kepler-class GPU: device
 * memory allocation, host<->device copies, module loading, and
 * kernel launches. Launches are serialized (as the paper notes,
 * CUPTI + cudaMemcpy serialize kernel invocations, which the case
 * studies exploit to avoid counter races).
 */

#ifndef SASSI_SIMT_DEVICE_H
#define SASSI_SIMT_DEVICE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "cupti/callbacks.h"
#include "sassir/module.h"
#include "simt/dispatcher.h"
#include "simt/launch.h"

namespace sassi::simt {

/** A simulated GPU: memory, loaded code, and a launch engine. */
class Device
{
  public:
    /** First valid global-memory device address. */
    static constexpr uint64_t GlobalBase = 0x10000000ull;

    /** Base of the generic-address window onto per-thread local
     *  memory (what L2G produces; kept above 4 GB so the high word
     *  of a generic pointer distinguishes the spaces). */
    static constexpr uint64_t LocalWindowBase = 0x100000000ull;

    /** Construct a device with the given heap capacity. */
    explicit Device(size_t heap_bytes = 512ull << 20);

    /// @name Memory API (cudaMalloc / cudaMemcpy / cudaMemset)
    /// @{

    /** Allocate device memory. @return its device address. */
    uint64_t malloc(size_t bytes, size_t align = 256);

    /** Copy host -> device. */
    void memcpyHtoD(uint64_t dst, const void *src, size_t n);

    /** Copy device -> host. */
    void memcpyDtoH(void *dst, uint64_t src, size_t n) const;

    /** Fill device memory. */
    void memset(uint64_t dst, uint8_t value, size_t n);

    /** Typed single-value read from global memory. */
    template <typename T>
    T
    read(uint64_t addr) const
    {
        T v;
        memcpyDtoH(&v, addr, sizeof(T));
        return v;
    }

    /** Typed single-value write to global memory. */
    template <typename T>
    void
    write(uint64_t addr, const T &v)
    {
        memcpyHtoD(addr, &v, sizeof(T));
    }

    /** @return whether addr lies in allocated global memory. */
    bool isGlobal(uint64_t addr) const;

    /**
     * Map (zero-filled) heap beyond the current allocations, up to
     * the heap capacity. Real devices map at allocation granularity
     * far beyond what an application touches, so many corrupted
     * addresses still hit mapped memory instead of faulting; the
     * error-injection study uses this to avoid over-reporting
     * crashes (see EXPERIMENTS.md).
     */
    void mapSlack(size_t bytes);

    /**
     * Bounds-checked raw pointer into the global heap; returns
     * nullptr when [addr, addr+n) is not allocated. Used by the
     * executor and by handler-side atomics.
     */
    uint8_t *globalPtr(uint64_t addr, size_t n);
    const uint8_t *globalPtr(uint64_t addr, size_t n) const;

    /// @}

    /// @name Code loading and launch
    /// @{

    /** Load (or replace) the module executed by launches. */
    void loadModule(ir::Module module);

    /** @return the loaded module. */
    const ir::Module &module() const { return module_; }

    /** @return mutable access to the loaded module. */
    ir::Module &module() { return module_; }

    /** Launch a kernel by name; blocks until completion. */
    LaunchResult launch(const std::string &kernel, Dim3 grid, Dim3 block,
                        const KernelArgs &args,
                        const LaunchOptions &opts = {});

    /// @}

    /** Install the SASSI handler dispatcher (nullptr to remove). */
    void setDispatcher(HandlerDispatcher *d) { dispatcher_ = d; }

    /** @return the installed dispatcher, if any. */
    HandlerDispatcher *dispatcher() const { return dispatcher_; }

    /** @return the CUPTI-like callback registry. */
    cupti::CallbackRegistry &callbacks() { return callbacks_; }

    /** @return cumulative statistics across all launches. */
    const LaunchStats &totalStats() const { return total_stats_; }

    /** @return the metrics registries of all launches, merged in
     *  launch order (launches are serialized, so this is exact). */
    const Metrics &metrics() const { return metrics_; }

    /** Reset the cumulative launch statistics and metrics. Transfer-
     *  byte and launch counters are cumulative program-lifetime
     *  quantities and are left alone (the Table 3 host-time model
     *  needs the setup-time copies). */
    void
    resetStats()
    {
        total_stats_ = LaunchStats();
        metrics_.clear();
    }

    /** @return bytes copied host->device so far. */
    uint64_t
    bytesH2D() const
    {
        return bytes_h2d_.load(std::memory_order_relaxed);
    }

    /** @return bytes copied device->host so far. */
    uint64_t
    bytesD2H() const
    {
        return bytes_d2h_.load(std::memory_order_relaxed);
    }

    /** @return kernel launches so far. */
    uint64_t
    launches() const
    {
        return launches_.load(std::memory_order_relaxed);
    }

  private:
    // The heap's capacity is reserved up front and resize never
    // exceeds it, so heap_.data() stays stable while parallel CTA
    // workers hold pointers into it; mem_mutex_ serializes the
    // allocator bookkeeping (brk_, size growth) itself.
    std::vector<uint8_t> heap_;
    uint64_t brk_ = GlobalBase;
    std::mutex mem_mutex_;
    ir::Module module_;
    HandlerDispatcher *dispatcher_ = nullptr;
    cupti::CallbackRegistry callbacks_;
    LaunchStats total_stats_;
    Metrics metrics_;
    std::atomic<uint64_t> bytes_h2d_{0};
    mutable std::atomic<uint64_t> bytes_d2h_{0};
    std::atomic<uint64_t> launches_{0};
};

} // namespace sassi::simt

#endif // SASSI_SIMT_DEVICE_H
