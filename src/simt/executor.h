/**
 * @file
 * The SIMT interpreter: executes one kernel launch.
 *
 * Semantics follow NVIDIA's Fermi/Kepler execution model as the
 * paper describes it (§2.1, §5): 32-lane warps fetch from a single
 * PC, conditional control flow pushes deferred paths onto a
 * divergence stack (SSY pushes the reconvergence token, divergent
 * branches push the not-taken side, SYNC pops), and predication
 * nullifies guarded-false lanes. Warps within a CTA interleave
 * round-robin, one instruction at a time; CTAs are independent up
 * to global atomics, so the grid is split into contiguous CTA
 * chunks scheduled work-stealing across a worker pool
 * (LaunchOptions::numThreads, simt/chunk_sched.h). Each worker is
 * an executor of its own with private warp state, shared memory,
 * statistics, and a deferred-counter shard; per-chunk statistics
 * are merged in chunk (i.e.\ ascending CTA) order and everything
 * per-worker is commutative, so results are bit-identical at any
 * thread count no matter which worker ran which chunk. With one
 * worker the historical strictly-serial execution is preserved
 * byte for byte.
 *
 * JCALs whose target is >= HandlerBase are SASSI handler
 * trampolines and are forwarded to the installed HandlerDispatcher.
 */

#ifndef SASSI_SIMT_EXECUTOR_H
#define SASSI_SIMT_EXECUTOR_H

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "sassir/module.h"
#include "simt/chunk_sched.h"
#include "simt/counter_shard.h"
#include "simt/decode.h"
#include "simt/device.h"
#include "simt/launch.h"
#include "simt/warp.h"
#include "util/metrics.h"

namespace sassi::simt {

/** Internal fault signal; run() converts it into a LaunchResult. */
struct SimFault
{
    Outcome outcome;
    std::string message;
};

/** Executes one launch of one kernel. */
class Executor
{
  public:
    /**
     * @param dev The device (memory, dispatcher).
     * @param kernel The kernel to run.
     * @param grid Grid dimensions.
     * @param block Block dimensions.
     * @param params Packed kernel parameters (LDC space).
     * @param opts Launch options.
     */
    Executor(Device &dev, const ir::Kernel &kernel, Dim3 grid, Dim3 block,
             std::vector<uint8_t> params, const LaunchOptions &opts);

    /**
     * Run the whole grid to completion, scheduling CTA chunks
     * work-stealing across the worker pool when the options allow
     * more than one thread. LaunchStats are accumulated per chunk
     * and merged in chunk order, so completed launches report
     * thread-count-invariant statistics. On a fault, the reported
     * fault — outcome, message, *and* statistics — comes from the
     * globally lowest faulting CTA-linear id: workers abandon CTAs
     * above the published fault bound but finish everything below
     * it, and chunks past the faulting one are dropped from the
     * merge, reproducing exactly what the serial path would have
     * executed and reported.
     */
    LaunchResult run();

    /// @name Introspection for handler dispatch
    /// @{

    Device &device() { return dev_; }
    const ir::Kernel &kernel() const { return kernel_; }
    Dim3 gridDim() const { return grid_; }
    Dim3 blockDim() const { return block_; }

    /** Coordinates of the CTA currently executing. */
    Dim3 ctaId() const { return cta_; }

    /** Linear id of the CTA currently executing. */
    uint64_t ctaLinear() const { return cta_linear_; }

    /**
     * Process-unique id of this executor instance. Caches keyed by
     * executor pointer alone could alias across launches (a later
     * Executor at the same address); keying by (pointer, launchSeq)
     * cannot.
     */
    uint64_t launchSeq() const { return launch_seq_; }

    /** Thread index (x,y,z) of a lane in the current CTA. Inline —
     *  handler dispatch builds a threadIdx per lane per site. */
    Dim3
    threadIdx(const Warp &warp, int lane) const
    {
        uint32_t linear =
            static_cast<uint32_t>(threadLinearInCta(warp, lane));
        // 1-D blocks (the overwhelmingly common case) skip the
        // div/mod chain.
        if (block_.y == 1 && block_.z == 1)
            return Dim3(linear, 0, 0);
        Dim3 t;
        t.x = linear % block_.x;
        t.y = (linear / block_.x) % block_.y;
        t.z = linear / (block_.x * block_.y);
        return t;
    }

    /** Flat thread index of a lane within its CTA. */
    int
    threadLinearInCta(const Warp &warp, int lane) const
    {
        return warp.rank * sass::WarpSize + lane;
    }

    /** Grid-wide flat thread index of a lane. */
    uint64_t
    globalThreadLinear(const Warp &warp, int lane) const
    {
        return cta_linear_ * block_.count() +
               static_cast<uint64_t>(threadLinearInCta(warp, lane));
    }

    /** Generic-window address of a thread's local byte 0. */
    uint64_t
    localWindowAddr(const Warp &warp, int lane) const
    {
        return Device::LocalWindowBase +
               globalThreadLinear(warp, lane) * kernel_.localBytes;
    }

    /**
     * Read up to 8 bytes through a generic address (global heap or
     * the local window of a thread in the current CTA). Throws
     * SimFault on a bad address — callers on fiber stacks must
     * catch before unwinding across the fiber boundary.
     */
    uint64_t readGeneric(uint64_t addr, int width);

    /** Write up to 8 bytes through a generic address. */
    void writeGeneric(uint64_t addr, uint64_t value, int width);

    /** Mutable statistics of the in-flight launch. In a parallel
     *  launch this is the calling worker's private accumulator. */
    LaunchStats &stats() { return stats_; }

    /**
     * The in-flight launch's metrics registry shard. Like stats(),
     * this is worker-private during a parallel launch and merged in
     * worker order at the end, so anything handlers record here must
     * be a sum/histogram for the registry to stay thread-count-
     * invariant.
     */
    Metrics &metrics() { return metrics_; }

    /**
     * Worker-private buffer for deferred blind counter adds
     * (cuda::countAdd64). Shards merge after the workers join and
     * the coordinator applies the summed deltas once; addition
     * commutes, so flushed counter values are bit-identical to
     * contended atomics at any thread count.
     */
    CounterShard &counterShard() { return counter_shard_; }

    /** Timeline track (worker index) of this executor's events. */
    int traceTid() const { return trace_tid_; }

    /**
     * Opaque per-launch scratch slot owned by the installed
     * dispatcher (e.g.\ cached registry handles into metrics()).
     * Worker-private like stats(); dies with the executor, so
     * cached pointers can never outlive the registry they index.
     */
    std::shared_ptr<void> &dispatcherScratch()
    {
        return dispatcher_scratch_;
    }

    /** Charge modeled handler-body cost, in warp instructions. */
    void
    chargeHandlerCost(uint64_t warp_instrs)
    {
        stats_.handlerCostInstrs += warp_instrs;
    }

    /// @}

  private:
    /** Outcome and statistics of one CTA chunk. */
    struct ChunkOutcome
    {
        LaunchStats stats;
        Outcome outcome = Outcome::Ok;
        std::string message;
        uint64_t faultCta = ~0ull;
    };

    /** Pull chunks from the scheduler until none remain. */
    void runWorker(int worker, ChunkScheduler &sched,
                   std::vector<ChunkOutcome> &out);
    /** Run one chunk's CTAs (ascending), honoring the fault bound. */
    void runChunk(const CtaChunk &chunk, ChunkOutcome &out);
    /** Run one CTA by linear id (trace + per-CTA bookkeeping). */
    void runOneCta(uint64_t linear);
    /** Apply the merged deferred-counter deltas to device memory. */
    void flushCounterShard();
    /** Republish final stats into metrics_ and attach the registry. */
    void finalizeMetrics(LaunchResult &result);
    /** Export this launch's dispatch-plane totals (post-merge). */
    void exportDispatchUsage(LaunchResult &result) const;
    void runCta();
    void step(Warp &warp);
    void unwindStack(Warp &warp);
    [[noreturn]] void
    fault(Outcome outcome, const std::string &message) const;

    /** Resolve a lane's memory operand to a host pointer. */
    uint8_t *resolveAddr(Warp &warp, int lane,
                         const sass::Instruction &ins, uint64_t addr,
                         int width);
    uint8_t *resolveGeneric(uint64_t addr, int width);

    /** Execute a whole superblock run for a converged warp. */
    void execSuperblock(Warp &warp, const Superblock &sb);

    /**
     * Try to enter a fused instrumentation site: materialize the
     * site's parameter frame from its compiled template and park the
     * warp on the round its JCAL would execute in. Returns false —
     * and leaves the warp untouched — when the site must take the
     * generic per-instruction path (handler not inline-dispatchable,
     * watchdog budget too tight, or a frame address the generic path
     * would fault on).
     */
    bool enterSiteRun(Warp &warp, uint16_t id);

    /** Dispatch the parked site's handler inline and replay the
     *  epilogue's register effects from the compiled template. */
    void completeSiteRun(Warp &warp);

    void execAlu(Warp &warp, const sass::Instruction &ins, uint32_t exec);
    void execMem(Warp &warp, const sass::Instruction &ins, uint32_t exec);
    void execWarpOp(Warp &warp, const sass::Instruction &ins,
                    uint32_t exec);

    Device &dev_;
    const ir::Kernel &kernel_;
    Dim3 grid_;
    Dim3 block_;
    std::vector<uint8_t> params_;
    LaunchOptions opts_;

    // --- Hot per-worker accumulators, written on every interpreted
    // instruction. Shard executors are separate allocations but the
    // allocator packs them; starting this block on its own cache
    // line keeps neighboring shards from false-sharing the fields
    // the inner loop hammers. ---
    alignas(64) LaunchStats stats_;
    Metrics metrics_;

    // Registry handles cached at construction so the interpreter's
    // hot loop bumps plain uint64s instead of doing map lookups.
    uint64_t *m_spill_instrs_ = nullptr;
    uint64_t *m_spill_bytes_ = nullptr;
    MetricHistogram *m_div_depth_ = nullptr;
    MetricHistogram *m_cta_warp_instrs_ = nullptr;
    int trace_tid_ = 0;
    uint64_t launch_seq_ = 0;
    std::shared_ptr<void> dispatcher_scratch_;

    // The kernel's compiled micro-program: fetched from the
    // process-wide UopCache by the coordinating executor and shared
    // read-only with its shards.
    std::shared_ptr<const MicroProgram> prog_;

    // Whether this launch takes the superblock fast path; resolved
    // once per launch from opts_.superblocks / the environment.
    bool superblocks_on_ = true;

    // Whether this launch takes the compiled-handler fast path;
    // requires superblocks (site runs are compiled into the same
    // micro-program variant).
    bool handler_fastpath_on_ = false;

    // Whether superblock runs call the lane-vectorized exec
    // functions (simt/simd/); requires superblocks, resolveSimd,
    // and AVX2 on this machine.
    bool simd_on_ = false;

    // Dynamic compiled-handler dispatch counts of this worker,
    // flushed to the UopCache once per launch alongside sb_runs_
    // (never into the launch registry, which must serialize
    // identically with the fast path on and off).
    uint64_t hs_inline_ = 0;
    uint64_t hs_fiber_ = 0;
    uint64_t hs_fallback_ = 0;
    uint64_t hs_inline_spill_bytes_ = 0;

    // Context the micro-op exec functions need beyond the warp;
    // refreshed per CTA.
    UopCtx uop_ctx_;

    // Dynamic superblock executions of this worker, flushed to the
    // UopCache once per launch (not into the launch registry, which
    // must serialize identically with superblocks on and off).
    uint64_t sb_runs_ = 0;
    uint64_t sb_instrs_ = 0;

    // Uop dispatch counts of this worker while the SIMD tier was
    // on: executed vectorized vs fell back to the scalar exec
    // function. Flushed with sb_runs_ (same launch-registry
    // invariance rule).
    uint64_t simd_vec_uops_ = 0;
    uint64_t simd_scalar_uops_ = 0;

    // Lowest faulting CTA-linear id published so far (fetch-min),
    // pointing into run()'s frame. Workers skip CTAs above the
    // bound at CTA boundaries but still finish everything below it,
    // so the final bound is deterministically the CTA the serial
    // path would have faulted on.
    std::atomic<uint64_t> *fault_bound_ = nullptr;

    // Deferred blind counter adds of this worker (cache-line-
    // aligned: the counterShard() add path runs once per handler
    // category bump).
    alignas(64) CounterShard counter_shard_;

    // Current CTA context (worker-private).
    std::vector<Warp> warps_;
    std::vector<uint8_t> shared_;
    Dim3 cta_;
    uint64_t cta_linear_ = 0;
    uint64_t watchdog_count_ = 0;
};

} // namespace sassi::simt

#endif // SASSI_SIMT_EXECUTOR_H
