#include "simt/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace sassi::simt {

ThreadPool::ThreadPool(int threads)
{
    int n = std::min(std::max(threads, 0), kMaxWorkers);
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::workerMain()
{
    uint32_t seen_generation = 0;
    for (;;) {
        uint32_t generation;
        const std::function<void(int)> *fn;
        int jobs;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return shutdown_ || generation_ != seen_generation;
            });
            if (shutdown_)
                return;
            // Copy the batch fields under the same lock that
            // observed the generation; drainBatch must not read
            // them again (a later batch may be rewriting them).
            generation = generation_;
            fn = fn_;
            jobs = jobs_;
            seen_generation = generation;
        }
        drainBatch(generation, fn, jobs);
    }
}

void
ThreadPool::drainBatch(uint32_t generation,
                       const std::function<void(int)> *fn, int jobs)
{
    for (;;) {
        uint64_t cur = cursor_.load(std::memory_order_acquire);
        if (static_cast<uint32_t>(cur >> 32) != generation)
            return; // A newer batch superseded this one.
        int job = static_cast<int>(static_cast<uint32_t>(cur));
        if (job >= jobs)
            return;
        if (!cursor_.compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire))
            continue;
        (*fn)(job);
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last job of the batch: wake the caller. Taking the
            // mutex orders the notify against the caller's predicate
            // check, so the wakeup can't be lost.
            std::lock_guard<std::mutex> lock(mutex_);
            done_cv_.notify_all();
        }
    }
}

void
ThreadPool::ensureWorkers(int target)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (target > kMaxWorkers) {
        if (!clamp_warned_) {
            clamp_warned_ = true;
            warn("thread pool capped at %d workers (%d requested); "
                 "resolveSimThreads applies the same cap",
                 kMaxWorkers, target);
        }
        target = kMaxWorkers;
    }
    while (static_cast<int>(workers_.size()) < target)
        workers_.emplace_back([this] { workerMain(); });
}

void
ThreadPool::parallelFor(int jobs, const std::function<void(int)> &fn)
{
    if (jobs <= 0)
        return;
    if (jobs > 1)
        ensureWorkers(jobs - 1);
    if (jobs == 1 || workers_.empty()) {
        for (int i = 0; i < jobs; ++i)
            fn(i);
        return;
    }
    // One batch at a time: concurrent callers (fuzz-campaign shards
    // each launching a multi-worker kernel) queue here instead of
    // overwriting each other's batch state. Never held by pool
    // workers, so the serialized batch always drains.
    std::lock_guard<std::mutex> batch_lock(batch_mutex_);
    uint32_t generation;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = &fn;
        jobs_ = jobs;
        generation = ++generation_;
        pending_.store(jobs, std::memory_order_relaxed);
        cursor_.store(static_cast<uint64_t>(generation) << 32,
                      std::memory_order_release);
    }
    work_cv_.notify_all();
    drainBatch(generation, &fn, jobs); // The caller works too.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
        return pending_.load(std::memory_order_acquire) == 0;
    });
    fn_ = nullptr;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()) - 1));
    return pool;
}

int
resolveSimThreads(int requested, uint64_t ctas)
{
    int n = requested;
    if (n <= 0) {
        if (const char *env = std::getenv("SASSI_SIM_THREADS"))
            n = std::atoi(env);
        if (n <= 0)
            n = static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()));
    }
    // Mirror the pool's hard cap so a launch never plans more
    // shards than the pool can actually run.
    n = std::min(n, ThreadPool::kMaxWorkers);
    uint64_t cap = std::max<uint64_t>(ctas, 1);
    return static_cast<int>(
        std::min<uint64_t>(static_cast<uint64_t>(n), cap));
}

} // namespace sassi::simt
