#include "simt/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace sassi::simt {

ThreadPool::ThreadPool(int threads)
{
    workers_.reserve(static_cast<size_t>(std::max(threads, 0)));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::workerMain()
{
    uint64_t seen_generation = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return shutdown_ || generation_ != seen_generation;
            });
            if (shutdown_)
                return;
            seen_generation = generation_;
        }
        drainBatch();
    }
}

void
ThreadPool::drainBatch()
{
    for (;;) {
        int job;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (next_job_ >= jobs_)
                return;
            job = next_job_++;
        }
        (*fn_)(job);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pending_;
            if (pending_ == 0)
                done_cv_.notify_all();
        }
    }
}

void
ThreadPool::ensureWorkers(int target)
{
    constexpr int kMaxWorkers = 64;
    target = std::min(target, kMaxWorkers);
    std::lock_guard<std::mutex> lock(mutex_);
    while (static_cast<int>(workers_.size()) < target)
        workers_.emplace_back([this] { workerMain(); });
}

void
ThreadPool::parallelFor(int jobs, const std::function<void(int)> &fn)
{
    if (jobs <= 0)
        return;
    if (jobs > 1)
        ensureWorkers(jobs - 1);
    if (jobs == 1 || workers_.empty()) {
        for (int i = 0; i < jobs; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = &fn;
        jobs_ = jobs;
        next_job_ = 0;
        pending_ = jobs;
        ++generation_;
    }
    work_cv_.notify_all();
    drainBatch(); // The caller works too.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    fn_ = nullptr;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(
        std::max(1u, std::thread::hardware_concurrency()) - 1);
    return pool;
}

int
resolveSimThreads(int requested, uint64_t ctas)
{
    int n = requested;
    if (n <= 0) {
        if (const char *env = std::getenv("SASSI_SIM_THREADS"))
            n = std::atoi(env);
        if (n <= 0)
            n = static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()));
    }
    uint64_t cap = std::max<uint64_t>(ctas, 1);
    return static_cast<int>(
        std::min<uint64_t>(static_cast<uint64_t>(n), cap));
}

} // namespace sassi::simt
