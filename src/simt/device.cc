#include "simt/device.h"

#include <algorithm>
#include <cstring>

#include "simt/executor.h"
#include "util/logging.h"

namespace sassi::simt {

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Ok: return "ok";
      case Outcome::MemFault: return "mem-fault";
      case Outcome::InvalidPC: return "invalid-pc";
      case Outcome::Hang: return "hang";
      case Outcome::Trap: return "trap";
    }
    return "?";
}

Device::Device(size_t heap_bytes)
{
    heap_.reserve(heap_bytes);
}

uint64_t
Device::malloc(size_t bytes, size_t align)
{
    std::lock_guard<std::mutex> lock(mem_mutex_);
    uint64_t addr = (brk_ + align - 1) & ~(static_cast<uint64_t>(align) - 1);
    uint64_t end = addr + bytes;
    fatal_if(end - GlobalBase > heap_.capacity(),
             "device out of memory: %zu bytes requested", bytes);
    if (end - GlobalBase > heap_.size())
        heap_.resize(end - GlobalBase, 0);
    brk_ = end;
    return addr;
}

void
Device::mapSlack(size_t bytes)
{
    std::lock_guard<std::mutex> lock(mem_mutex_);
    size_t want = heap_.size() + bytes;
    heap_.resize(std::min(want, heap_.capacity()), 0);
}

bool
Device::isGlobal(uint64_t addr) const
{
    return addr >= GlobalBase && addr - GlobalBase < heap_.size();
}

uint8_t *
Device::globalPtr(uint64_t addr, size_t n)
{
    if (addr < GlobalBase)
        return nullptr;
    uint64_t off = addr - GlobalBase;
    if (off + n > heap_.size())
        return nullptr;
    return heap_.data() + off;
}

const uint8_t *
Device::globalPtr(uint64_t addr, size_t n) const
{
    return const_cast<Device *>(this)->globalPtr(addr, n);
}

void
Device::memcpyHtoD(uint64_t dst, const void *src, size_t n)
{
    uint8_t *p = globalPtr(dst, n);
    fatal_if(!p, "memcpyHtoD out of bounds: 0x%llx + %zu",
             static_cast<unsigned long long>(dst), n);
    bytes_h2d_.fetch_add(n, std::memory_order_relaxed);
    std::memcpy(p, src, n);
}

void
Device::memcpyDtoH(void *dst, uint64_t src, size_t n) const
{
    const uint8_t *p = globalPtr(src, n);
    fatal_if(!p, "memcpyDtoH out of bounds: 0x%llx + %zu",
             static_cast<unsigned long long>(src), n);
    bytes_d2h_.fetch_add(n, std::memory_order_relaxed);
    std::memcpy(dst, p, n);
}

void
Device::memset(uint64_t dst, uint8_t value, size_t n)
{
    uint8_t *p = globalPtr(dst, n);
    fatal_if(!p, "memset out of bounds: 0x%llx + %zu",
             static_cast<unsigned long long>(dst), n);
    std::memset(p, value, n);
}

void
Device::loadModule(ir::Module module)
{
    module_ = std::move(module);
}

LaunchResult
Device::launch(const std::string &kernel, Dim3 grid, Dim3 block,
               const KernelArgs &args, const LaunchOptions &opts)
{
    const ir::Kernel *k = module_.find(kernel);
    fatal_if(!k, "launch of unknown kernel '%s'", kernel.c_str());
    fatal_if(block.count() == 0 || block.count() > 1024,
             "invalid block size %llu",
             static_cast<unsigned long long>(block.count()));
    fatal_if(grid.count() == 0, "empty grid");

    cupti::CallbackData data;
    data.kernelName = kernel;
    data.invocation = callbacks_.noteLaunch(kernel);
    data.grid[0] = grid.x;
    data.grid[1] = grid.y;
    data.grid[2] = grid.z;
    data.block[0] = block.x;
    data.block[1] = block.y;
    data.block[2] = block.z;
    callbacks_.fire(cupti::CallbackSite::KernelLaunch, data);

    // Launches are serialized, so the dispatcher can rebuild its
    // per-site dispatch plans here without racing any worker.
    if (dispatcher_)
        dispatcher_->prepareLaunch();

    Executor exec(*this, *k, grid, block, args.bytes(), opts);
    LaunchResult result = exec.run();
    total_stats_.add(result.stats);
    metrics_.merge(result.metrics);
    launches_.fetch_add(1, std::memory_order_relaxed);

    data.launchOk = result.ok();
    data.errorMessage = result.message;
    callbacks_.fire(cupti::CallbackSite::KernelExit, data);
    return result;
}

} // namespace sassi::simt
