/**
 * @file
 * Architectural state of one warp.
 *
 * This is the state SASSI handlers can observe and (for the error-
 * injection study) mutate: general registers, predicate registers,
 * the carry flag, the divergence stack, and per-thread local memory.
 *
 * Layout is register-major (structure-of-arrays): the 32 lanes of
 * one general register are a contiguous 128-byte span, each
 * predicate register is a single 32-bit lane bitmask, and the carry
 * flag is one lane bitmask too. This is what lets the SIMD
 * interpreter layer (simt/simd/) execute an ALU micro-op for all 32
 * lanes with four 256-bit loads per operand, and it is also kinder
 * to the scalar lane loops, which walk consecutive words of each
 * operand span instead of striding by the register budget.
 */

#ifndef SASSI_SIMT_WARP_H
#define SASSI_SIMT_WARP_H

#include <array>
#include <cstdint>
#include <vector>

#include "sass/reg.h"
#include "util/logging.h"

namespace sassi::simt {

/** One token on the SIMT divergence (reconvergence) stack. */
struct DivToken
{
    enum class Kind {
        Sync, //!< Pushed by SSY: reconvergence point and mask.
        Div,  //!< Pushed by a divergent branch: the deferred path.
    };

    Kind kind = Kind::Sync;
    uint32_t mask = 0; //!< Lanes to activate when popped.
    uint32_t pc = 0;   //!< Where those lanes resume.
};

/** Architectural state of one 32-lane warp. */
struct Warp
{
    /** Warp rank within its CTA. */
    int rank = 0;

    /** Current program counter (instruction index). */
    uint32_t pc = 0;

    /** Lanes executing the current path. */
    uint32_t activeMask = 0;

    /** Lanes that have not executed EXIT. */
    uint32_t liveMask = 0;

    /** Register file, register-major: regs[r * WarpSize + lane]. */
    std::vector<uint32_t> regs;

    /** Predicate files: one 32-lane bitmask per predicate P0..P6. */
    std::array<uint32_t, sass::NumPred> predBits{};

    /** Carry flag, one bit per lane. */
    uint32_t ccMask = 0;

    /** The divergence stack. */
    std::vector<DivToken> divStack;

    /** Call return addresses (warp-wide; calls must be convergent). */
    std::vector<uint32_t> callStack;

    /** Per-thread local memory, lane-major: localBytes per lane. */
    std::vector<uint8_t> localMem;

    /** Set while parked at a CTA barrier. */
    bool atBarrier = false;

    /**
     * Scheduler rounds this warp still owes after batch-executing a
     * superblock (simt/decode.h). A run of n instructions consumes
     * one round and then parks here for n-1 more, so the warp's
     * *next* shared-state access (memory, atomic, barrier) lands in
     * exactly the round it would have under per-instruction
     * stepping — keeping warp interleaving, and therefore every
     * racing kernel's dynamic behavior, bit-identical between the
     * fast and generic paths.
     */
    uint32_t skipRounds = 0;

    /**
     * Nonzero while parked mid-way through a fused instrumentation
     * site (simt/site_fuse.h): the 1-based SiteRun id whose handler
     * dispatch and epilogue run in the warp's next scheduler round —
     * the round the generic path would have executed the JCAL in.
     */
    uint16_t pendingSite = 0;

    int numRegs = 0;
    uint32_t localBytes = 0;

    /** @return whether any lane is still live. */
    bool done() const { return liveMask == 0; }

    /** The contiguous 32-lane span of general register r (never RZ). */
    uint32_t *
    laneSpan(sass::RegId r)
    {
        return regs.data() +
               static_cast<size_t>(r) * sass::WarpSize;
    }

    /** @copydoc laneSpan */
    const uint32_t *
    laneSpan(sass::RegId r) const
    {
        return regs.data() +
               static_cast<size_t>(r) * sass::WarpSize;
    }

    /** Read general register r of a lane (RZ reads 0). */
    uint32_t
    reg(int lane, sass::RegId r) const
    {
        if (r == sass::RZ)
            return 0;
        panic_if(r >= numRegs, "register R%d out of budget %d", r,
                 numRegs);
        return regs[static_cast<size_t>(r) * sass::WarpSize +
                    static_cast<size_t>(lane)];
    }

    /** Write general register r of a lane (RZ discards). */
    void
    setReg(int lane, sass::RegId r, uint32_t v)
    {
        if (r == sass::RZ)
            return;
        panic_if(r >= numRegs, "register R%d out of budget %d", r,
                 numRegs);
        regs[static_cast<size_t>(r) * sass::WarpSize +
             static_cast<size_t>(lane)] = v;
    }

    /** Read predicate p of a lane (PT reads true). */
    bool
    pred(int lane, sass::PredId p) const
    {
        if (p == sass::PT)
            return true;
        return predBits[static_cast<size_t>(p)] & (1u << lane);
    }

    /** Write predicate p of a lane (PT discards). */
    void
    setPred(int lane, sass::PredId p, bool v)
    {
        if (p == sass::PT)
            return;
        uint32_t &bits = predBits[static_cast<size_t>(p)];
        if (v)
            bits |= 1u << lane;
        else
            bits &= ~(1u << lane);
    }

    /** One lane's P0..P6 packed into bits 0..6 (P2R's source view). */
    uint8_t
    predByte(int lane) const
    {
        uint32_t bits = 0;
        for (int p = 0; p < sass::NumPred; ++p)
            bits |= ((predBits[static_cast<size_t>(p)] >> lane) & 1u)
                    << p;
        return static_cast<uint8_t>(bits);
    }

    /** Overwrite one lane's P0..P6 from bits 0..6 of a byte. */
    void
    setPredByte(int lane, uint8_t bits)
    {
        const uint32_t m = 1u << lane;
        for (int p = 0; p < sass::NumPred; ++p) {
            if (bits & (1u << p))
                predBits[static_cast<size_t>(p)] |= m;
            else
                predBits[static_cast<size_t>(p)] &= ~m;
        }
    }

    /** Read the carry flag of a lane. */
    bool
    cc(int lane) const
    {
        return ccMask & (1u << lane);
    }

    /** Write the carry flag of a lane. */
    void
    setCC(int lane, bool v)
    {
        if (v)
            ccMask |= 1u << lane;
        else
            ccMask &= ~(1u << lane);
    }
};

} // namespace sassi::simt

#endif // SASSI_SIMT_WARP_H
