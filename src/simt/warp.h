/**
 * @file
 * Architectural state of one warp.
 *
 * This is the state SASSI handlers can observe and (for the error-
 * injection study) mutate: general registers, predicate registers,
 * the carry flag, the divergence stack, and per-thread local memory.
 */

#ifndef SASSI_SIMT_WARP_H
#define SASSI_SIMT_WARP_H

#include <array>
#include <cstdint>
#include <vector>

#include "sass/reg.h"
#include "util/logging.h"

namespace sassi::simt {

/** One token on the SIMT divergence (reconvergence) stack. */
struct DivToken
{
    enum class Kind {
        Sync, //!< Pushed by SSY: reconvergence point and mask.
        Div,  //!< Pushed by a divergent branch: the deferred path.
    };

    Kind kind = Kind::Sync;
    uint32_t mask = 0; //!< Lanes to activate when popped.
    uint32_t pc = 0;   //!< Where those lanes resume.
};

/** Architectural state of one 32-lane warp. */
struct Warp
{
    /** Warp rank within its CTA. */
    int rank = 0;

    /** Current program counter (instruction index). */
    uint32_t pc = 0;

    /** Lanes executing the current path. */
    uint32_t activeMask = 0;

    /** Lanes that have not executed EXIT. */
    uint32_t liveMask = 0;

    /** Register file: regs[lane * numRegs + r]. */
    std::vector<uint32_t> regs;

    /** Predicate files, one bitmask of P0..P6 per lane. */
    std::array<uint8_t, sass::WarpSize> preds{};

    /** Carry flag per lane. */
    std::array<bool, sass::WarpSize> cc{};

    /** The divergence stack. */
    std::vector<DivToken> divStack;

    /** Call return addresses (warp-wide; calls must be convergent). */
    std::vector<uint32_t> callStack;

    /** Per-thread local memory, lane-major: localBytes per lane. */
    std::vector<uint8_t> localMem;

    /** Set while parked at a CTA barrier. */
    bool atBarrier = false;

    /**
     * Scheduler rounds this warp still owes after batch-executing a
     * superblock (simt/decode.h). A run of n instructions consumes
     * one round and then parks here for n-1 more, so the warp's
     * *next* shared-state access (memory, atomic, barrier) lands in
     * exactly the round it would have under per-instruction
     * stepping — keeping warp interleaving, and therefore every
     * racing kernel's dynamic behavior, bit-identical between the
     * fast and generic paths.
     */
    uint32_t skipRounds = 0;

    /**
     * Nonzero while parked mid-way through a fused instrumentation
     * site (simt/site_fuse.h): the 1-based SiteRun id whose handler
     * dispatch and epilogue run in the warp's next scheduler round —
     * the round the generic path would have executed the JCAL in.
     */
    uint16_t pendingSite = 0;

    int numRegs = 0;
    uint32_t localBytes = 0;

    /** @return whether any lane is still live. */
    bool done() const { return liveMask == 0; }

    /** Read general register r of a lane (RZ reads 0). */
    uint32_t
    reg(int lane, sass::RegId r) const
    {
        if (r == sass::RZ)
            return 0;
        panic_if(r >= numRegs, "register R%d out of budget %d", r,
                 numRegs);
        return regs[static_cast<size_t>(lane) *
                    static_cast<size_t>(numRegs) + r];
    }

    /** Write general register r of a lane (RZ discards). */
    void
    setReg(int lane, sass::RegId r, uint32_t v)
    {
        if (r == sass::RZ)
            return;
        panic_if(r >= numRegs, "register R%d out of budget %d", r,
                 numRegs);
        regs[static_cast<size_t>(lane) * static_cast<size_t>(numRegs) +
             r] = v;
    }

    /** Read predicate p of a lane (PT reads true). */
    bool
    pred(int lane, sass::PredId p) const
    {
        if (p == sass::PT)
            return true;
        return preds[static_cast<size_t>(lane)] & (1u << p);
    }

    /** Write predicate p of a lane (PT discards). */
    void
    setPred(int lane, sass::PredId p, bool v)
    {
        if (p == sass::PT)
            return;
        auto &bits = preds[static_cast<size_t>(lane)];
        if (v)
            bits = static_cast<uint8_t>(bits | (1u << p));
        else
            bits = static_cast<uint8_t>(bits & ~(1u << p));
    }
};

} // namespace sassi::simt

#endif // SASSI_SIMT_WARP_H
