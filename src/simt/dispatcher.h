/**
 * @file
 * The hook through which JCALs to instrumentation handlers re-enter
 * tool code. The simulator stays independent of the SASSI core: it
 * only knows that a JCAL whose target is at or above HandlerBase is
 * a handler trampoline and forwards it here.
 */

#ifndef SASSI_SIMT_DISPATCHER_H
#define SASSI_SIMT_DISPATCHER_H

#include <cstdint>

namespace sassi::simt {

class Executor;
struct Warp;

/** JCAL targets >= HandlerBase name instrumentation handlers. */
constexpr int32_t HandlerBase = 1 << 24;

/** Receiver of handler-trampoline calls. */
class HandlerDispatcher
{
  public:
    virtual ~HandlerDispatcher() = default;

    /**
     * Execute handler site_key for the warp currently at a JCAL.
     *
     * @param exec The running executor (register/memory access).
     * @param warp The calling warp; activeMask lanes made the call.
     * @param site_key target - HandlerBase of the JCAL.
     */
    virtual void dispatch(Executor &exec, Warp &warp, int32_t site_key) = 0;

    /**
     * Called once at the start of every launch, before any worker
     * thread exists. Dispatchers that cache per-site dispatch plans
     * (resolved handler targets, traits) rebuild them here, so the
     * per-dispatch hot path never has to take a lock or re-derive
     * anything that only changes when handlers are (re)registered.
     */
    virtual void prepareLaunch() {}

    /**
     * @return true when the handler behind site_key may be called
     * inline from the executor's fused-site path — i.e.\ without a
     * fiber group (so it must never suspend or use warp-rendezvous
     * intrinsics). Sites that answer false take the generic
     * per-instruction path with the full fiber dispatch.
     */
    virtual bool
    inlineDispatchable(int32_t site_key)
    {
        (void)site_key;
        return false;
    }

    /**
     * Inline (fiber-less) variant of dispatch() for a fused site.
     * Must be observationally identical to dispatch() — same
     * metrics, same handler effects, same faults. Only called when
     * inlineDispatchable(site_key) returned true.
     *
     * @param frame_addr Per-lane generic address of the site's
     *        parameter frame (indexed by lane; active lanes only).
     * @param frame_host Per-lane host pointer to the same frame
     *        bytes, for direct parameter access.
     * @return true when the handler wrote device memory that the
     *         site's epilogue may reload (the parameter frame or the
     *         lane-local window). A false return licenses the caller
     *         to skip identity fills — the frame still holds exactly
     *         what the prologue spilled.
     */
    virtual bool
    dispatchInline(Executor &exec, Warp &warp, int32_t site_key,
                   const uint64_t *frame_addr,
                   uint8_t *const *frame_host)
    {
        (void)exec;
        (void)warp;
        (void)site_key;
        (void)frame_addr;
        (void)frame_host;
        return true;
    }
};

} // namespace sassi::simt

#endif // SASSI_SIMT_DISPATCHER_H
