/**
 * @file
 * The hook through which JCALs to instrumentation handlers re-enter
 * tool code. The simulator stays independent of the SASSI core: it
 * only knows that a JCAL whose target is at or above HandlerBase is
 * a handler trampoline and forwards it here.
 */

#ifndef SASSI_SIMT_DISPATCHER_H
#define SASSI_SIMT_DISPATCHER_H

#include <cstdint>

namespace sassi::simt {

class Executor;
struct Warp;

/** JCAL targets >= HandlerBase name instrumentation handlers. */
constexpr int32_t HandlerBase = 1 << 24;

/** Receiver of handler-trampoline calls. */
class HandlerDispatcher
{
  public:
    virtual ~HandlerDispatcher() = default;

    /**
     * Execute handler site_key for the warp currently at a JCAL.
     *
     * @param exec The running executor (register/memory access).
     * @param warp The calling warp; activeMask lanes made the call.
     * @param site_key target - HandlerBase of the JCAL.
     */
    virtual void dispatch(Executor &exec, Warp &warp, int32_t site_key) = 0;
};

} // namespace sassi::simt

#endif // SASSI_SIMT_DISPATCHER_H
