/**
 * @file
 * Compiled instrumentation sites: the frame-template recognizer.
 *
 * The SASSI pass (core/instrument.cc) splices a fixed-shape bundle
 * of synthetic instructions around every instrumentation point:
 * stack-frame prologue, liveness-driven register/predicate/CC
 * spills, parameter-block construction, a JCAL trampoline into the
 * handler dispatcher, fills, and the epilogue. Interpreting that
 * bundle one instruction at a time — and crossing into handler code
 * through a per-site fiber round-trip — dominates instrumented run
 * time (paper §9.1's overhead discussion).
 *
 * This module recognizes those bundles at decode time, entirely from
 * the instruction stream (no side channel from the instrumenter:
 * anything unrecognized simply stays on the generic path). Each
 * recognized bundle becomes a SiteRun: a prebuilt frame template —
 * the list of frame-slot stores with symbolic values (constant,
 * register contents, recomputed memory address, guard flag,
 * predicate/CC bits) — plus the register effects and pred/CC
 * restores of the epilogue. The executor can then materialize the
 * whole frame with direct stores, invoke the handler inline when the
 * dispatcher allows it, and apply the epilogue effects, charging
 * exactly the statistics the generic path would have.
 *
 * The recognizer is deliberately conservative: a bundle is accepted
 * only when every instruction's symbolic meaning is proven, so a
 * SiteRun is observationally equivalent to stepping the bundle — the
 * differential tests and the fuzz oracle's fast-path dimension hold
 * it to bit-identical device memory, stats, and metrics.
 */

#ifndef SASSI_SIMT_SITE_FUSE_H
#define SASSI_SIMT_SITE_FUSE_H

#include <cstdint>
#include <utility>
#include <vector>

#include "sass/opcode.h"
#include "sassir/module.h"

namespace sassi::simt {

/**
 * One 32-bit store of the frame template (phase A, before the
 * handler runs). The slot is frame-relative unless abs is set, in
 * which case it addresses the lane's persistent spill area at the
 * bottom of the local window (spill elision, core/instrument.cc).
 */
struct SiteStore
{
    enum class Kind : uint8_t {
        Const,     //!< Literal value (imm).
        Reg,       //!< Contents of GPR reg at site entry.
        AddrLo,    //!< Low word of the recomputed memory address.
        AddrHi,    //!< High word of the recomputed memory address.
        PredBits,  //!< Predicate file bits masked with imm.
        CCOrig,    //!< 0x80 when the carry flag is set at entry.
        CCCarry,   //!< 0x80 when the address-add carried (IADD.CC
                   //!< runs before the CC spill, so the spilled CC
                   //!< is the carry of the low address word).
        GuardFlag, //!< 1 when predicate reg (negated by neg) holds.
    };

    Kind kind = Kind::Const;
    bool abs = false;   //!< Absolute local-window offset (persistent).
    bool spill = false; //!< Counts as spill/fill traffic.
    uint8_t reg = 0;    //!< Reg: source GPR; GuardFlag: predicate.
    bool neg = false;   //!< GuardFlag: guard negation.
    uint32_t off = 0;   //!< Byte offset (frame-relative or absolute).
    uint32_t imm = 0;   //!< Const: value; PredBits: mask.
};

/**
 * The final value of one GPR after the bundle (phase B, after the
 * handler returns). Registers not listed keep their entry value —
 * spills never modify registers, so the bundle's net register
 * effect is just the scratch/fill residue the epilogue leaves.
 */
struct SiteRegEffect
{
    enum class Kind : uint8_t {
        Const,    //!< imm.
        FrameRel, //!< Entry R1 plus rel (mod 2^32).
        AddrLo,   //!< Low word of the recomputed memory address.
        AddrHi,   //!< High word of the recomputed memory address.
        GenLo,    //!< Low word of the generic address of R1 + rel.
        GenHi,    //!< High word of the same generic address.
        Load,     //!< 32-bit loaded from frame slot off (post-handler).
    };

    Kind kind = Kind::Const;
    uint8_t reg = 0;  //!< Destination GPR.
    bool abs = false; //!< Load: absolute local-window offset.
    uint32_t off = 0; //!< Load: byte offset.
    uint32_t imm = 0; //!< Const: value.
    int64_t rel = 0;  //!< FrameRel/GenLo/GenHi: offset from entry R1.

    /**
     * The effect provably rewrites the register's current value: a
     * fill from the exact slot phase A spilled that register to, or
     * the net-zero stack pop of R1. The fused path skips identity
     * effects whenever the handler did not write frame memory (no
     * SetRegValue etc.) — registers cannot change between the two
     * phases any other way, since the parked warp executes nothing.
     */
    bool identity = false;
};

/**
 * Execution statistics of one half of a bundle (prologue through
 * JCAL, or post-JCAL epilogue), precomputed so the fused path can
 * charge LaunchStats/metrics exactly as per-instruction stepping
 * would. Everything in a bundle executes under the full active mask
 * except guarded flag pairs, whose two halves partition it — hence
 * threadInstrs = threadFactor * popc(activeMask).
 */
struct SiteRunStats
{
    uint64_t warpInstrs = 0;
    uint64_t threadFactor = 0;
    uint64_t memInstrs = 0;      //!< STL/LDL count (countsAsMem).
    uint64_t spillInstrs = 0;    //!< Instructions flagged spillFill.
    uint64_t spillWidthSum = 0;  //!< Sum of spillFill widths (bytes
                                 //!< per active lane).
    std::vector<std::pair<sass::Opcode, uint32_t>> opcodeCounts;
};

/**
 * SIMD store plan: one aligned group of 8 consecutive 4-byte slots
 * of one row (frame-relative or absolute), covering every template
 * store whose offset falls in [base, base + 32). The SIMD frame tier
 * (simt/simd/site_frame.cc) computes each store's 32 lane values
 * vertically, then per group transposes 8 lanes at a time and writes
 * each lane's 32-byte span with a single 256-bit store — masked by
 * `mask` so slots no store writes keep their previous bytes, exactly
 * like the scalar loop. rowSrc holds the index of the *last* store
 * writing each slot, so aliasing stores land with scalar semantics
 * (stores shadowed by a later one to the same slot are dead and the
 * SIMD tier never evaluates them). Groups whose written slots are
 * all Const stores produce the identical 32-byte row for every lane;
 * constOnly/constVal bake that row at compile time so the runtime
 * skips the gather and transpose for them wholesale.
 */
struct SiteSlotGroup
{
    uint32_t base = 0;     //!< Byte offset of slot 0 (32-byte units).
    bool abs = false;      //!< Absolute local-window row.
    bool constOnly = false; //!< All written slots are Const stores.
    bool regConst = false; //!< All written slots are Reg or Const
                           //!< stores: the runtime evaluates slots
                           //!< via regIdx/constVal (load-or-splat)
                           //!< instead of the per-kind dispatch.
    uint8_t mask = 0;      //!< Bit j set: slot j is written.
    uint8_t rowSrc[8] = {0xff, 0xff, 0xff, 0xff,
                         0xff, 0xff, 0xff, 0xff}; //!< 0xff = gap.
    uint8_t regIdx[8] = {0xff, 0xff, 0xff, 0xff,
                         0xff, 0xff, 0xff, 0xff}; //!< Reg slot: the
                           //!< source GPR; 0xff: use constVal[j].
    int32_t maskVec[8] = {0}; //!< -1 where written, 0 where gap
                              //!< (ready-made maskstore operand).
    uint32_t constVal[8] = {0}; //!< Baked values of Const slots (and
                                //!< the zero rows of gap slots).
};

/** One recognized instrumentation-site bundle. */
struct SiteRun
{
    uint32_t start = 0;   //!< First instruction (the prologue IADD).
    uint32_t len = 0;     //!< Bundle length in instructions.
    uint32_t jcalIdx = 0; //!< Run-relative index of the JCAL.
    int32_t siteKey = 0;  //!< JCAL target minus HandlerBase.

    /** Prologue stack adjustment (negative); frame size is -frameRel. */
    int64_t frameRel = 0;

    /** @return the per-lane frame size in bytes. */
    int64_t frameBytes() const { return -frameRel; }

    // Recomputed memory-operand address (memoryInfo sites). The
    // address registers hold their entry values when the bundle's
    // address adds ran, so the fused path can recompute from the
    // live register file: lo = lo32(reg(addrLoReg) + addrImmLo),
    // carry = bit 32 of that sum, and for 64-bit bases
    // hi = lo32(reg(addrHiReg) + addrImmHi + carry).
    bool hasAddr = false;
    bool addrPair = false;
    uint8_t addrLoReg = 0;
    uint8_t addrHiReg = 0;
    uint32_t addrImmLo = 0;
    uint32_t addrImmHi = 0;

    // Epilogue predicate/CC restores (from the R2P fills). The
    // identity flags mirror SiteRegEffect::identity: the restore
    // reloads the slot phase A spilled the full predicate file (or
    // the entry CC) to, so it is a no-op unless the handler wrote
    // frame memory.
    bool restorePred = false;
    bool restorePredAbs = false;
    bool restorePredIdentity = false;
    uint32_t restorePredOff = 0;
    bool restoreCC = false;
    bool restoreCCAbs = false;
    bool restoreCCIdentity = false;
    uint32_t restoreCCOff = 0;

    std::vector<SiteStore> stores;      //!< Phase A frame template.
    std::vector<SiteSlotGroup> groups;  //!< SIMD store plan (empty
                                        //!< when the template is not
                                        //!< vectorizable; the scalar
                                        //!< loop is always correct).
    std::vector<SiteRegEffect> effects; //!< Phase B register effects.

    /**
     * Every phase-B effect (including the pred/CC restores) is an
     * identity rewrite: when the handler leaves frame memory clean
     * the executor can skip the whole epilogue-replay block — the
     * per-lane setup loops included — not just individual effects.
     */
    bool effectsAllIdentity = false;

    /** Some phase-B effect reads the recomputed memory address. */
    bool effectsNeedAddr = false;

    SiteRunStats pre;  //!< Instructions start .. start+jcalIdx.
    SiteRunStats post; //!< Instructions start+jcalIdx+1 .. start+len-1.

    /** @return spill/fill bytes charged per active lane. */
    uint64_t
    spillBytesPerLane() const
    {
        return pre.spillWidthSum + post.spillWidthSum;
    }
};

/**
 * Scan a kernel for instrumentation-site bundles. leader must be
 * ir::blockLeaders(kernel); a bundle with a branch target strictly
 * inside it is rejected (control may enter mid-bundle).
 *
 * @return recognized runs in ascending, non-overlapping start order.
 */
std::vector<SiteRun> compileSiteRuns(const ir::Kernel &kernel,
                                     const std::vector<uint8_t> &leader);

} // namespace sassi::simt

#endif // SASSI_SIMT_SITE_FUSE_H
