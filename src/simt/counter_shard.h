/**
 * @file
 * Per-worker accumulator for blind device-counter adds.
 *
 * The paper's handlers (Figures 3/4/6) bump device-memory counters
 * with atomicAdd and never read them until the host collects results
 * after the launch. Routing those adds through real atomic RMWs
 * made every worker hammer the same cache lines — the measured
 * reason the 8-worker instrumented run sat at ~35-40x slowdown. A
 * CounterShard instead buffers {device address -> delta} privately
 * per worker; the coordinating executor merges the shards after the
 * workers join and applies the summed deltas once. Addition is
 * commutative, so the flushed counter values are bit-identical to
 * what contended atomics would have produced, at any thread count.
 *
 * Only *blind* adds may be deferred (cuda::countAdd64). Anything
 * that observes the old value — CAS key claims in DevHashTable, the
 * value profiler's spin locks — must stay on the real atomics in
 * core/intrinsics.cc.
 *
 * Layout: open addressing over power-of-two slots, linear probing.
 * Handlers touch a handful of distinct addresses (7 category words,
 * one hash-table payload per static site, a 32x32 matrix), so
 * lookups are one or two probes and the table rarely grows.
 */

#ifndef SASSI_SIMT_COUNTER_SHARD_H
#define SASSI_SIMT_COUNTER_SHARD_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace sassi::simt {

/** Worker-private map of device address -> pending counter delta. */
class CounterShard
{
  public:
    CounterShard() { reset(); }

    /** Accumulate a blind 64-bit add against a device address. */
    void
    add(uint64_t addr, uint64_t v)
    {
        size_t mask = slots_.size() - 1;
        size_t i = hash(addr) & mask;
        for (;;) {
            Slot &s = slots_[i];
            if (s.addr == addr) {
                s.delta += v;
                return;
            }
            if (s.addr == kEmpty) {
                s.addr = addr;
                s.delta = v;
                if (++used_ * 4 > slots_.size() * 3)
                    grow();
                return;
            }
            i = (i + 1) & mask;
        }
    }

    bool empty() const { return used_ == 0; }

    /** Fold another shard's pending deltas into this one. */
    void
    merge(const CounterShard &o)
    {
        if (o.used_ == 0)
            return;
        for (const Slot &s : o.slots_) {
            if (s.addr != kEmpty)
                add(s.addr, s.delta);
        }
    }

    /**
     * All pending (address, delta) pairs in ascending address order,
     * leaving the shard empty. Sorted so the flush walks device
     * memory sequentially and so any flush-time fault reproduces at
     * a deterministic address.
     */
    std::vector<std::pair<uint64_t, uint64_t>>
    drainSorted()
    {
        std::vector<std::pair<uint64_t, uint64_t>> out;
        out.reserve(used_);
        for (const Slot &s : slots_) {
            if (s.addr != kEmpty)
                out.emplace_back(s.addr, s.delta);
        }
        std::sort(out.begin(), out.end());
        reset();
        return out;
    }

  private:
    // ~0 is unreachable as a device address (the heap tops out far
    // below the generic-address space), so it can mark empty slots.
    static constexpr uint64_t kEmpty = ~0ull;

    struct Slot
    {
        uint64_t addr;
        uint64_t delta;
    };

    static size_t
    hash(uint64_t a)
    {
        // Counters are 8-byte words; mix the word index so adjacent
        // counters spread across slots.
        uint64_t x = a >> 3;
        x *= 0x9e3779b97f4a7c15ull;
        return static_cast<size_t>(x >> 32);
    }

    void
    reset()
    {
        slots_.assign(64, Slot{kEmpty, 0});
        used_ = 0;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{kEmpty, 0});
        size_t mask = slots_.size() - 1;
        for (const Slot &s : old) {
            if (s.addr == kEmpty)
                continue;
            size_t i = hash(s.addr) & mask;
            while (slots_[i].addr != kEmpty)
                i = (i + 1) & mask;
            slots_[i] = s;
        }
    }

    std::vector<Slot> slots_;
    size_t used_ = 0;
};

} // namespace sassi::simt

#endif // SASSI_SIMT_COUNTER_SHARD_H
