#include "simt/site_fuse.h"

#include <algorithm>

#include "sass/instr.h"
#include "sass/reg.h"
#include "simt/dispatcher.h"

namespace sassi::simt {

namespace {

using sass::Instruction;
using sass::Opcode;
using sass::PT;
using sass::RZ;

/**
 * Symbolic value of a register during the scan. The scanner runs a
 * tiny abstract interpreter over the bundle: every register starts
 * as Orig (its own entry value) and each recognized instruction
 * rewrites destination symbols. Any value it cannot name exactly
 * rejects the bundle.
 */
struct Sym
{
    enum class K : uint8_t {
        Orig,      //!< Entry value of register reg.
        Const,     //!< imm.
        R1Rel,     //!< Entry R1 + rel (mod 2^32).
        AddrLo,    //!< Low word of the recomputed address.
        AddrHi,    //!< High word of the recomputed address.
        GuardFlag, //!< (pred reg != neg) ? 1 : 0.
        PredBits,  //!< Predicate file bits & imm.
        CCOrig,    //!< Entry CC ? 0x80 : 0.
        CCCarry,   //!< Address-add carry ? 0x80 : 0.
        GenLo,     //!< Low word of generic address of entry R1 + rel.
        GenHi,     //!< High word of the same.
        Load,      //!< 32 bits loaded from frame slot off.
    };

    K k = K::Orig;
    uint8_t reg = 0;
    bool neg = false;
    bool abs = false;
    uint32_t imm = 0;
    int64_t rel = 0;
    uint32_t off = 0;
};

/** Recognizes one bundle starting at a given pc. */
class SiteScanner
{
  public:
    SiteScanner(const ir::Kernel &k, const std::vector<uint8_t> &leader)
        : k_(k), leader_(leader)
    {
    }

    bool scan(uint32_t start, SiteRun &out);

  private:
    static constexpr int TrackedRegs = 32;

    bool readSym(uint8_t r, Sym &out) const;
    bool writeSym(uint8_t r, const Sym &s);
    bool frameSlot(const Instruction &ins, int width, uint32_t &off,
                   bool &abs) const;
    void charge(const Instruction &ins, uint32_t instrs,
                uint32_t thread_factor);
    bool finish(SiteRun &out);

    const ir::Kernel &k_;
    const std::vector<uint8_t> &leader_;

    SiteRun *run_ = nullptr;
    Sym syms_[TrackedRegs];
    int64_t r1rel_ = 0;
    bool seen_jcal_ = false;
    bool cc_is_carry_ = false;
    bool seen_addr_hi_ = false;
};

bool
SiteScanner::readSym(uint8_t r, Sym &out) const
{
    if (r == RZ) {
        out = Sym{};
        out.k = Sym::K::Const;
        out.imm = 0;
        return true;
    }
    if (r == sass::abi::StackPtr) {
        out = Sym{};
        out.k = Sym::K::R1Rel;
        out.rel = r1rel_;
        return true;
    }
    if (r >= k_.numRegs)
        return false; // The generic path would panic; don't fuse.
    if (r >= TrackedRegs) {
        // High registers are never written by a bundle (scratch and
        // spill targets stay below 32), so their value is Orig.
        out = Sym{};
        out.k = Sym::K::Orig;
        out.reg = r;
        return true;
    }
    out = syms_[r];
    return true;
}

bool
SiteScanner::writeSym(uint8_t r, const Sym &s)
{
    if (r == RZ || r == sass::abi::StackPtr || r >= TrackedRegs ||
        r >= k_.numRegs)
        return false;
    syms_[r] = s;
    return true;
}

/**
 * Resolve an STL/LDL slot: either frame-relative off R1 (which must
 * still sit at the prologue displacement) or absolute off RZ (the
 * persistent spill area). Bounds are checked against the frame and
 * the local window, so a materialized store can never land outside
 * memory the generic path would have touched.
 */
bool
SiteScanner::frameSlot(const Instruction &ins, int width, uint32_t &off,
                       bool &abs) const
{
    const uint64_t o = static_cast<uint32_t>(ins.imm);
    if (ins.srcA == sass::abi::StackPtr) {
        if (r1rel_ != run_->frameRel)
            return false;
        if (o + width > static_cast<uint64_t>(run_->frameBytes()))
            return false;
        off = static_cast<uint32_t>(o);
        abs = false;
        return true;
    }
    if (ins.srcA == RZ) {
        if (o + width > k_.localBytes)
            return false;
        off = static_cast<uint32_t>(o);
        abs = true;
        return true;
    }
    return false;
}

/** Charge one recognized instruction (or a guarded pair) to stats. */
void
SiteScanner::charge(const Instruction &ins, uint32_t instrs,
                    uint32_t thread_factor)
{
    SiteRunStats &s = seen_jcal_ ? run_->post : run_->pre;
    s.warpInstrs += instrs;
    s.threadFactor += thread_factor;
    if (ins.isMem())
        s.memInstrs += instrs;
    if (ins.spillFill) {
        s.spillInstrs += instrs;
        s.spillWidthSum += ins.width;
    }
    for (auto &[op, count] : s.opcodeCounts) {
        if (op == ins.op) {
            count += instrs;
            return;
        }
    }
    s.opcodeCounts.emplace_back(ins.op, instrs);
}

bool
SiteScanner::finish(SiteRun &out)
{
    if (!seen_jcal_ || r1rel_ != 0)
        return false;
    for (int r = 0; r < TrackedRegs; ++r) {
        const Sym &s = syms_[r];
        SiteRegEffect e;
        e.reg = static_cast<uint8_t>(r);
        switch (s.k) {
          case Sym::K::Orig:
            if (s.reg != r)
                return false;
            continue;
          case Sym::K::Const:
            e.kind = SiteRegEffect::Kind::Const;
            e.imm = s.imm;
            break;
          case Sym::K::R1Rel:
            e.kind = SiteRegEffect::Kind::FrameRel;
            e.rel = s.rel;
            break;
          case Sym::K::AddrLo:
            e.kind = SiteRegEffect::Kind::AddrLo;
            break;
          case Sym::K::AddrHi:
            e.kind = SiteRegEffect::Kind::AddrHi;
            break;
          case Sym::K::GenLo:
            e.kind = SiteRegEffect::Kind::GenLo;
            e.rel = s.rel;
            break;
          case Sym::K::GenHi:
            e.kind = SiteRegEffect::Kind::GenHi;
            e.rel = s.rel;
            break;
          case Sym::K::Load:
            e.kind = SiteRegEffect::Kind::Load;
            e.off = s.off;
            e.abs = s.abs;
            break;
          default:
            return false; // Guard/pred/CC bits never survive a real
                          // bundle; reject anything that leaves one.
        }
        out.effects.push_back(e);
    }
    return true;
}

bool
SiteScanner::scan(uint32_t start, SiteRun &out)
{
    const auto &code = k_.code;
    const uint32_t n = static_cast<uint32_t>(code.size());

    // The bundle signature: a synthetic, unpredicated stack-frame
    // prologue IADD32I R1, R1, -frame.
    const Instruction &p = code[start];
    if (p.op != Opcode::IADD32I || !p.synthetic || p.guard != PT ||
        p.guardNeg || p.dst != sass::abi::StackPtr ||
        p.srcA != sass::abi::StackPtr || !p.bIsImm || p.setCC ||
        p.useCC || p.spillFill)
        return false;
    const int64_t frame_rel =
        static_cast<int32_t>(static_cast<uint32_t>(p.imm));
    if (frame_rel >= 0 || -frame_rel > (1 << 20))
        return false;

    run_ = &out;
    out = SiteRun{};
    out.start = start;
    out.frameRel = frame_rel;
    for (int r = 0; r < TrackedRegs; ++r) {
        syms_[r] = Sym{};
        syms_[r].reg = static_cast<uint8_t>(r);
    }
    r1rel_ = 0;
    seen_jcal_ = false;
    cc_is_carry_ = false;
    seen_addr_hi_ = false;

    uint32_t i = start;
    bool done = false;
    while (i < n && !done) {
        if (i != start && leader_[i])
            return false; // Control may enter mid-bundle.
        const Instruction &ins = code[i];
        if (!ins.synthetic)
            return false;
        const bool pre = !seen_jcal_;

        switch (ins.op) {
          case Opcode::IADD32I: {
            if (!ins.bIsImm)
                return false;
            if (ins.guard != PT) {
                // A guardedFlag pair: @g dst = 1; @!g dst = 0. The
                // two halves partition the active mask, so together
                // they deposit (pred(g) != neg) ? 1 : 0.
                if (!pre || i + 1 >= n || leader_[i + 1])
                    return false;
                const Instruction &f = code[i + 1];
                if (ins.srcA != RZ || ins.imm != 1 || ins.setCC ||
                    ins.useCC || f.op != Opcode::IADD32I ||
                    !f.synthetic || !f.bIsImm || f.guard != ins.guard ||
                    f.guardNeg != !ins.guardNeg || f.dst != ins.dst ||
                    f.srcA != RZ || f.imm != 0 || f.setCC || f.useCC)
                    return false;
                Sym s;
                s.k = Sym::K::GuardFlag;
                s.reg = ins.guard;
                s.neg = ins.guardNeg;
                if (!writeSym(ins.dst, s))
                    return false;
                charge(ins, 2, 1);
                i += 2;
                continue;
            }
            if (ins.guardNeg)
                return false;
            const int64_t imm32 =
                static_cast<int32_t>(static_cast<uint32_t>(ins.imm));
            if (ins.setCC) {
                // Low word of a 64-bit address recomputation; the
                // carry lands in CC (and is spilled as the CC value,
                // matching the generic path's quirk).
                Sym a;
                if (!pre || ins.useCC || out.hasAddr ||
                    !readSym(ins.srcA, a) ||
                    !(a.k == Sym::K::Orig || a.k == Sym::K::Const))
                    return false;
                if (a.k == Sym::K::Const && a.imm != 0)
                    return false; // Only RZ bases fold to Const.
                out.hasAddr = true;
                out.addrPair = true;
                out.addrLoReg = ins.srcA;
                out.addrImmLo = static_cast<uint32_t>(ins.imm);
                Sym s;
                s.k = Sym::K::AddrLo;
                if (!writeSym(ins.dst, s))
                    return false;
                cc_is_carry_ = true;
            } else if (ins.useCC) {
                // High word: base_hi + (imm < 0 ? -1 : 0) + carry.
                Sym a;
                if (!pre || !cc_is_carry_ || !out.addrPair ||
                    seen_addr_hi_ || !readSym(ins.srcA, a) ||
                    !(a.k == Sym::K::Orig || a.k == Sym::K::Const) ||
                    (imm32 != 0 && imm32 != -1))
                    return false;
                if (a.k == Sym::K::Const && a.imm != 0)
                    return false;
                out.addrHiReg = ins.srcA;
                out.addrImmHi = static_cast<uint32_t>(imm32);
                seen_addr_hi_ = true;
                Sym s;
                s.k = Sym::K::AddrHi;
                if (!writeSym(ins.dst, s))
                    return false;
            } else if (ins.dst == sass::abi::StackPtr) {
                if (ins.srcA != sass::abi::StackPtr)
                    return false;
                r1rel_ += imm32;
                if (seen_jcal_ && r1rel_ == 0)
                    done = true; // Epilogue: the bundle is complete.
            } else {
                Sym a;
                if (!readSym(ins.srcA, a))
                    return false;
                Sym s;
                if (a.k == Sym::K::R1Rel) {
                    s.k = Sym::K::R1Rel;
                    s.rel = a.rel + imm32;
                } else if (a.k == Sym::K::Const) {
                    s.k = Sym::K::Const;
                    s.imm = a.imm + static_cast<uint32_t>(ins.imm);
                } else if (a.k == Sym::K::Orig && pre && !out.hasAddr) {
                    // 32-bit address recomputation (no carry chain).
                    out.hasAddr = true;
                    out.addrPair = false;
                    out.addrLoReg = ins.srcA;
                    out.addrImmLo = static_cast<uint32_t>(ins.imm);
                    s.k = Sym::K::AddrLo;
                } else {
                    return false;
                }
                if (!writeSym(ins.dst, s))
                    return false;
            }
            charge(ins, 1, 1);
            break;
          }

          case Opcode::MOV32I: {
            if (ins.guard != PT || ins.guardNeg)
                return false;
            Sym s;
            s.k = Sym::K::Const;
            s.imm = static_cast<uint32_t>(ins.imm);
            if (!writeSym(ins.dst, s))
                return false;
            charge(ins, 1, 1);
            break;
          }

          case Opcode::STL: {
            uint32_t off;
            bool abs;
            if (!pre || ins.guard != PT ||
                (ins.width != 4 && ins.width != 8) ||
                !frameSlot(ins, ins.width, off, abs))
                return false;
            const int words = ins.width / 4;
            for (int w = 0; w < words; ++w) {
                Sym v;
                if (!readSym(static_cast<uint8_t>(
                                 ins.srcB == RZ ? RZ : ins.srcB + w),
                             v))
                    return false;
                SiteStore st;
                st.off = off + 4 * w;
                st.abs = abs;
                st.spill = ins.spillFill;
                switch (v.k) {
                  case Sym::K::Orig:
                    st.kind = SiteStore::Kind::Reg;
                    st.reg = v.reg;
                    break;
                  case Sym::K::Const:
                    st.kind = SiteStore::Kind::Const;
                    st.imm = v.imm;
                    break;
                  case Sym::K::AddrLo:
                    st.kind = SiteStore::Kind::AddrLo;
                    break;
                  case Sym::K::AddrHi:
                    st.kind = SiteStore::Kind::AddrHi;
                    break;
                  case Sym::K::GuardFlag:
                    st.kind = SiteStore::Kind::GuardFlag;
                    st.reg = v.reg;
                    st.neg = v.neg;
                    break;
                  case Sym::K::PredBits:
                    st.kind = SiteStore::Kind::PredBits;
                    st.imm = v.imm;
                    break;
                  case Sym::K::CCOrig:
                    st.kind = SiteStore::Kind::CCOrig;
                    break;
                  case Sym::K::CCCarry:
                    st.kind = SiteStore::Kind::CCCarry;
                    break;
                  default:
                    return false;
                }
                out.stores.push_back(st);
            }
            charge(ins, 1, 1);
            break;
          }

          case Opcode::LDL: {
            uint32_t off;
            bool abs;
            if (pre || ins.guard != PT || ins.width != 4 || ins.sExt ||
                !frameSlot(ins, 4, off, abs))
                return false;
            Sym s;
            s.k = Sym::K::Load;
            s.off = off;
            s.abs = abs;
            if (!writeSym(ins.dst, s))
                return false;
            charge(ins, 1, 1);
            break;
          }

          case Opcode::P2R: {
            const uint32_t mask = static_cast<uint32_t>(ins.imm);
            if (!pre || ins.guard != PT)
                return false;
            Sym s;
            if (mask == 0x80) {
                s.k = cc_is_carry_ ? Sym::K::CCCarry : Sym::K::CCOrig;
            } else if ((mask & 0x80) == 0) {
                s.k = Sym::K::PredBits;
                s.imm = mask;
            } else {
                return false;
            }
            if (!writeSym(ins.dst, s))
                return false;
            charge(ins, 1, 1);
            break;
          }

          case Opcode::R2P: {
            const uint32_t mask = static_cast<uint32_t>(ins.imm);
            Sym a;
            if (pre || ins.guard != PT || !readSym(ins.srcA, a) ||
                a.k != Sym::K::Load)
                return false;
            if (mask == 0x7f && !out.restorePred) {
                out.restorePred = true;
                out.restorePredOff = a.off;
                out.restorePredAbs = a.abs;
            } else if (mask == 0x80 && !out.restoreCC) {
                out.restoreCC = true;
                out.restoreCCOff = a.off;
                out.restoreCCAbs = a.abs;
            } else {
                return false;
            }
            charge(ins, 1, 1);
            break;
          }

          case Opcode::L2G: {
            Sym a;
            if (!pre || ins.guard != PT || !readSym(ins.srcA, a) ||
                a.k != Sym::K::R1Rel)
                return false;
            Sym lo;
            lo.k = Sym::K::GenLo;
            lo.rel = a.rel;
            Sym hi;
            hi.k = Sym::K::GenHi;
            hi.rel = a.rel;
            if (!writeSym(ins.dst, lo) ||
                !writeSym(static_cast<uint8_t>(ins.dst + 1), hi))
                return false;
            charge(ins, 1, 1);
            break;
          }

          case Opcode::JCAL: {
            Sym a0, a1;
            if (seen_jcal_ || ins.guard != PT ||
                ins.target < HandlerBase ||
                !readSym(sass::abi::Arg0Lo, a0) ||
                !readSym(sass::abi::Arg0Lo + 1, a1) ||
                a0.k != Sym::K::GenLo || a0.rel != frame_rel ||
                a1.k != Sym::K::GenHi || a1.rel != frame_rel)
                return false;
            out.jcalIdx = i - start;
            out.siteKey = ins.target - HandlerBase;
            charge(ins, 1, 1);
            seen_jcal_ = true;
            break;
          }

          default:
            return false;
        }
        ++i;
    }

    if (!done)
        return false;
    out.len = i - start;
    if (out.jcalIdx == 0)
        return false;
    return finish(out);
}

/**
 * The last phase-A store targeting slot (abs, off), or null. Later
 * stores win: the generic path executes them in order, so only the
 * final value is what a fill can observe.
 */
const SiteStore *
lastStoreAt(const SiteRun &run, bool abs, uint32_t off)
{
    const SiteStore *found = nullptr;
    for (const SiteStore &st : run.stores) {
        if (st.abs == abs && st.off == off)
            found = &st;
    }
    return found;
}

/**
 * Mark the effects (and pred/CC restores) that merely rewrite state
 * phase A saved: fills whose slot was spilled from the same register
 * and never overwritten, R1's net-zero stack pop, and restores of
 * the full predicate file / the entry CC. When the handler leaves
 * frame memory untouched, the executor skips these wholesale — the
 * parked warp executes nothing between the phases, so the values
 * are still live in the register/predicate files.
 */
void
markIdentity(SiteRun &run)
{
    for (SiteRegEffect &e : run.effects) {
        if (e.kind == SiteRegEffect::Kind::Load) {
            const SiteStore *st = lastStoreAt(run, e.abs, e.off);
            e.identity = st && st->kind == SiteStore::Kind::Reg &&
                         st->reg == e.reg;
        } else if (e.kind == SiteRegEffect::Kind::FrameRel) {
            e.identity = e.reg == sass::abi::StackPtr && e.rel == 0;
        }
    }
    if (run.restorePred) {
        const SiteStore *st =
            lastStoreAt(run, run.restorePredAbs, run.restorePredOff);
        run.restorePredIdentity =
            st && st->kind == SiteStore::Kind::PredBits &&
            (st->imm & 0x7f) == 0x7f;
    }
    if (run.restoreCC) {
        const SiteStore *st =
            lastStoreAt(run, run.restoreCCAbs, run.restoreCCOff);
        run.restoreCCIdentity =
            st && st->kind == SiteStore::Kind::CCOrig;
    }
}

/**
 * Bucket the template stores into SiteSlotGroups: aligned 8-slot
 * windows per row, each slot recording the last store that writes
 * it. Groups make the SIMD tier's store count proportional to frame
 * *span*, not store count — small interleaved segments share one
 * transpose + one masked 256-bit store per lane. An empty plan means
 * the template is not vectorizable (misaligned or oversized); the
 * scalar loop handles it.
 */
void
buildSlotGroups(SiteRun &run)
{
    run.groups.clear();
    // rowSrc is a uint8_t store index; templates anywhere near the
    // limit are degenerate, so just leave them to the scalar loop.
    if (run.stores.size() >= 0xff)
        return;
    for (size_t i = 0; i < run.stores.size(); ++i) {
        const SiteStore &st = run.stores[i];
        if (st.off % 4 != 0) {
            run.groups.clear();
            return;
        }
        const uint32_t base = st.off & ~31u;
        const uint32_t slot = (st.off & 31u) / 4;
        SiteSlotGroup *g = nullptr;
        for (SiteSlotGroup &cand : run.groups) {
            if (cand.base == base && cand.abs == st.abs) {
                g = &cand;
                break;
            }
        }
        if (!g) {
            run.groups.emplace_back();
            g = &run.groups.back();
            g->base = base;
            g->abs = st.abs;
        }
        g->mask |= static_cast<uint8_t>(1u << slot);
        g->rowSrc[slot] = static_cast<uint8_t>(i);
    }
    // Finalize after bucketing so last-wins aliasing has settled:
    // bake the maskstore operand, the lane-invariant row of Const
    // slots, and the load-or-splat plan for Reg/Const-only windows
    // (the SIMD tier then skips the per-kind dispatch entirely —
    // the scanner guarantees Reg sources are within the register
    // budget, so regIdx always names a live SoA span).
    for (SiteSlotGroup &g : run.groups) {
        g.constOnly = true;
        g.regConst = true;
        for (int j = 0; j < 8; ++j) {
            if (!(g.mask & (1u << j)))
                continue;
            g.maskVec[j] = -1;
            const SiteStore &st = run.stores[g.rowSrc[j]];
            if (st.kind == SiteStore::Kind::Const) {
                g.constVal[j] = st.imm;
            } else {
                g.constOnly = false;
                if (st.kind == SiteStore::Kind::Reg)
                    g.regIdx[j] = st.reg;
                else
                    g.regConst = false;
            }
        }
    }
}

/**
 * Summarize the phase-B effect list so the executor can skip the
 * whole epilogue replay (setup loops included) when the handler left
 * frame memory clean and everything is an identity rewrite.
 */
void
summarizeEffects(SiteRun &run)
{
    bool all = true;
    bool addr = false;
    for (const SiteRegEffect &e : run.effects) {
        all = all && e.identity;
        addr = addr || e.kind == SiteRegEffect::Kind::AddrLo ||
               e.kind == SiteRegEffect::Kind::AddrHi;
    }
    if (run.restorePred)
        all = all && run.restorePredIdentity;
    if (run.restoreCC)
        all = all && run.restoreCCIdentity;
    run.effectsAllIdentity = all;
    run.effectsNeedAddr = addr;
}

} // namespace

std::vector<SiteRun>
compileSiteRuns(const ir::Kernel &kernel,
                const std::vector<uint8_t> &leader)
{
    std::vector<SiteRun> runs;
    const auto &code = kernel.code;
    SiteScanner scanner(kernel, leader);
    uint32_t i = 0;
    while (i < code.size()) {
        const Instruction &ins = code[i];
        // Cheap pre-filter before the full scan: bundles start with
        // a synthetic stack-frame prologue on R1.
        if (ins.op == Opcode::IADD32I && ins.synthetic &&
            ins.dst == sass::abi::StackPtr &&
            ins.srcA == sass::abi::StackPtr) {
            SiteRun run;
            if (scanner.scan(i, run)) {
                markIdentity(run);
                buildSlotGroups(run);
                summarizeEffects(run);
                i += run.len;
                runs.push_back(std::move(run));
                continue;
            }
        }
        ++i;
    }
    return runs;
}

} // namespace sassi::simt
