#include "sass/instr.h"

#include <sstream>

#include "util/logging.h"

namespace sassi::sass {

std::string_view
cmpName(CmpOp cmp)
{
    switch (cmp) {
      case CmpOp::LT: return "LT";
      case CmpOp::EQ: return "EQ";
      case CmpOp::LE: return "LE";
      case CmpOp::GT: return "GT";
      case CmpOp::NE: return "NE";
      case CmpOp::GE: return "GE";
    }
    return "?";
}

bool
Instruction::addrIsPair() const
{
    if (!isMem())
        return false;
    switch (space) {
      case MemSpace::Generic:
      case MemSpace::Global:
      case MemSpace::Texture:
      case MemSpace::Surface:
        return true;
      case MemSpace::Shared:
      case MemSpace::Local:
      case MemSpace::Constant:
        return false;
    }
    return false;
}

int
Instruction::dstRegCount() const
{
    switch (op) {
      case Opcode::LD:
      case Opcode::LDG:
      case Opcode::LDS:
      case Opcode::LDL:
      case Opcode::LDC:
      case Opcode::TLD:
      case Opcode::SULD:
        return width <= 4 ? 1 : width / 4;
      case Opcode::ATOM:
      case Opcode::ATOMS:
        return width <= 4 ? 1 : width / 4;
      case Opcode::L2G:
        return 2;
      case Opcode::VOTE:
        return vote == VoteMode::Ballot ? 1 : 0;
      default:
        return writesGPR() ? 1 : 0;
    }
}

std::vector<RegId>
Instruction::dstRegs() const
{
    std::vector<RegId> out;
    if (!writesGPR() || dst == RZ)
        return out;
    int n = dstRegCount();
    for (int i = 0; i < n; ++i)
        out.push_back(static_cast<RegId>(dst + i));
    return out;
}

std::vector<RegId>
Instruction::srcRegs() const
{
    std::vector<RegId> out;
    auto add = [&](RegId r) {
        if (r != RZ)
            out.push_back(r);
    };
    auto addPair = [&](RegId r) {
        if (r != RZ) {
            out.push_back(r);
            out.push_back(static_cast<RegId>(r + 1));
        }
    };
    auto addData = [&](RegId r) {
        if (r == RZ)
            return;
        int n = width <= 4 ? 1 : width / 4;
        for (int i = 0; i < n; ++i)
            out.push_back(static_cast<RegId>(r + i));
    };

    switch (op) {
      case Opcode::LD:
      case Opcode::LDG:
      case Opcode::TLD:
      case Opcode::SULD:
        addPair(srcA);
        break;
      case Opcode::LDS:
      case Opcode::LDL:
      case Opcode::LDC:
        add(srcA);
        break;
      case Opcode::ST:
      case Opcode::STG:
      case Opcode::SUST:
        addPair(srcA);
        addData(srcB);
        break;
      case Opcode::STS:
      case Opcode::STL:
        add(srcA);
        addData(srcB);
        break;
      case Opcode::ATOM:
      case Opcode::RED:
        addPair(srcA);
        addData(srcB);
        if (atom == AtomOp::Cas)
            addData(srcC);
        break;
      case Opcode::ATOMS:
        add(srcA);
        addData(srcB);
        if (atom == AtomOp::Cas)
            addData(srcC);
        break;
      case Opcode::MOV:
      case Opcode::POPC:
      case Opcode::FLO:
      case Opcode::I2F:
      case Opcode::F2I:
      case Opcode::MUFU:
      case Opcode::R2P:
      case Opcode::L2G:
        add(srcA);
        break;
      case Opcode::MOV32I:
      case Opcode::S2R:
      case Opcode::P2R:
      case Opcode::BRA:
      case Opcode::JCAL:
      case Opcode::RET:
      case Opcode::EXIT:
      case Opcode::BPT:
      case Opcode::SSY:
      case Opcode::SYNC:
      case Opcode::BAR:
      case Opcode::MEMBAR:
      case Opcode::NOP:
      case Opcode::PSETP:
      case Opcode::VOTE:
        break;
      case Opcode::SHFL:
        add(srcA);
        if (!bIsImm)
            add(srcB);
        break;
      case Opcode::IMAD:
      case Opcode::FFMA:
        add(srcA);
        if (!bIsImm)
            add(srcB);
        add(srcC);
        break;
      default:
        // Two-source ALU shape: IADD, IMUL, SHL, SHR, LOP, SEL,
        // IMNMX, FADD, FMUL, FMNMX, ISETP, FSETP, IADD32I.
        add(srcA);
        if (!bIsImm)
            add(srcB);
        break;
    }
    return out;
}

std::vector<PredId>
Instruction::srcPreds() const
{
    std::vector<PredId> out;
    if (guard != PT)
        out.push_back(guard);
    switch (op) {
      case Opcode::SEL:
      case Opcode::PSETP:
      case Opcode::VOTE:
      case Opcode::ISETP:
      case Opcode::FSETP:
        if (pSrc != PT)
            out.push_back(pSrc);
        break;
      case Opcode::P2R:
        for (PredId p = 0; p < NumPred; ++p)
            out.push_back(p);
        break;
      default:
        break;
    }
    return out;
}

std::vector<PredId>
Instruction::dstPreds() const
{
    std::vector<PredId> out;
    switch (op) {
      case Opcode::ISETP:
      case Opcode::FSETP:
      case Opcode::PSETP:
        if (pDst != PT)
            out.push_back(pDst);
        break;
      case Opcode::VOTE:
        if (vote != VoteMode::Ballot && pDst != PT)
            out.push_back(pDst);
        break;
      case Opcode::R2P:
        for (PredId p = 0; p < NumPred; ++p) {
            if (imm & (1 << p))
                out.push_back(p);
        }
        break;
      default:
        break;
    }
    return out;
}

namespace {

std::string
regName(RegId r)
{
    if (r == RZ)
        return "RZ";
    return "R" + std::to_string(static_cast<int>(r));
}

std::string
predName(PredId p)
{
    if (p == PT)
        return "PT";
    return "P" + std::to_string(static_cast<int>(p));
}

std::string
immStr(int64_t v)
{
    std::ostringstream ss;
    if (v < 0)
        ss << "-0x" << std::hex << -v;
    else
        ss << "0x" << std::hex << v;
    return ss.str();
}

const char *kVoteNames[] = {"ALL", "ANY", "BALLOT"};
const char *kShflNames[] = {"IDX", "UP", "DOWN", "BFLY"};
const char *kAtomNames[] = {"ADD", "MIN", "MAX", "AND", "OR", "XOR",
                            "EXCH", "CAS"};
const char *kMufuNames[] = {"RCP", "SQRT", "RSQ", "LG2", "EX2", "SIN",
                            "COS"};
const char *kLogicNames[] = {"AND", "OR", "XOR", "PASS_B", "NOT"};
const char *kSregNames[] = {
    "SR_TID.X", "SR_TID.Y", "SR_TID.Z",
    "SR_CTAID.X", "SR_CTAID.Y", "SR_CTAID.Z",
    "SR_NTID.X", "SR_NTID.Y", "SR_NTID.Z",
    "SR_NCTAID.X", "SR_NCTAID.Y", "SR_NCTAID.Z",
    "SR_LANEID", "SR_WARPID", "SR_CLOCK",
};

} // namespace

std::string_view
sregName(SpecialReg sr)
{
    return kSregNames[static_cast<int>(sr)];
}

std::string
Instruction::disasm() const
{
    std::ostringstream ss;
    if (guard != PT)
        ss << '@' << (guardNeg ? "!" : "") << predName(guard) << ' ';

    ss << opName(op);

    // Modifier suffixes.
    switch (op) {
      case Opcode::ISETP:
        ss << '.' << cmpName(cmp);
        if (!sExt)
            ss << ".U32";
        break;
      case Opcode::FSETP:
        ss << '.' << cmpName(cmp);
        break;
      case Opcode::IMNMX:
      case Opcode::FMNMX:
        ss << (cmp == CmpOp::LT ? ".MIN" : ".MAX");
        break;
      case Opcode::SHR:
        if (sExt)
            ss << ".S";
        break;
      case Opcode::LOP:
      case Opcode::PSETP:
        ss << '.' << kLogicNames[static_cast<int>(logic)];
        break;
      case Opcode::VOTE:
        ss << '.' << kVoteNames[static_cast<int>(vote)];
        break;
      case Opcode::SHFL:
        ss << '.' << kShflNames[static_cast<int>(shfl)];
        break;
      case Opcode::ATOM:
      case Opcode::ATOMS:
      case Opcode::RED:
        ss << '.' << kAtomNames[static_cast<int>(atom)];
        break;
      case Opcode::MUFU:
        ss << '.' << kMufuNames[static_cast<int>(mufu)];
        break;
      default:
        break;
    }
    if (isMem()) {
        if (op == Opcode::LD || op == Opcode::ST)
            ss << ".E";
        // LDC included: dropping its width made wide constant loads
        // replay narrow from a saved reproducer.
        if (width != 4)
            ss << '.' << static_cast<int>(width) * 8;
        if (sExt && (opFlags(op) & OF_MemRead) && op != Opcode::LDC)
            ss << ".S";
    }
    if (setCC)
        ss << ".CC";
    if (useCC)
        ss << ".X";

    ss << ' ';
    bool first = true;
    auto sep = [&]() {
        if (!first)
            ss << ", ";
        first = false;
    };
    auto emitReg = [&](RegId r) { sep(); ss << regName(r); };
    auto emitPred = [&](PredId p, bool neg = false) {
        sep();
        if (neg)
            ss << '!';
        ss << predName(p);
    };
    auto emitImm = [&](int64_t v) { sep(); ss << immStr(v); };
    auto emitAddr = [&]() {
        sep();
        ss << '[' << regName(srcA);
        if (imm)
            ss << (imm < 0 ? "" : "+") << immStr(imm);
        ss << ']';
    };
    auto emitB = [&]() {
        if (bIsImm)
            emitImm(imm);
        else
            emitReg(srcB);
    };

    switch (op) {
      case Opcode::NOP:
      case Opcode::RET:
      case Opcode::EXIT:
      case Opcode::BPT:
      case Opcode::SYNC:
      case Opcode::BAR:
      case Opcode::MEMBAR:
        break;
      case Opcode::BRA:
      case Opcode::SSY:
      case Opcode::JCAL:
        emitImm(target);
        break;
      case Opcode::MOV:
      case Opcode::POPC:
      case Opcode::FLO:
      case Opcode::I2F:
      case Opcode::F2I:
      case Opcode::MUFU:
      case Opcode::L2G:
        emitReg(dst);
        emitReg(srcA);
        break;
      case Opcode::MOV32I:
        emitReg(dst);
        emitImm(imm);
        break;
      case Opcode::SEL:
        emitReg(dst);
        emitReg(srcA);
        emitReg(srcB);
        emitPred(pSrc, pSrcNeg);
        break;
      case Opcode::IMAD:
      case Opcode::FFMA:
        emitReg(dst);
        emitReg(srcA);
        emitB();
        emitReg(srcC);
        break;
      case Opcode::ISETP:
      case Opcode::FSETP:
        emitPred(pDst);
        emitReg(srcA);
        emitB();
        break;
      case Opcode::PSETP:
        emitPred(pDst);
        emitPred(pSrc, pSrcNeg);
        emitPred(static_cast<PredId>(imm & 7), (imm & 8) != 0);
        break;
      case Opcode::P2R:
        emitReg(dst);
        emitImm(imm);
        break;
      case Opcode::R2P:
        emitReg(srcA);
        emitImm(imm);
        break;
      case Opcode::LD:
      case Opcode::LDG:
      case Opcode::LDS:
      case Opcode::LDL:
      case Opcode::TLD:
      case Opcode::SULD:
        emitReg(dst);
        emitAddr();
        break;
      case Opcode::LDC:
        emitReg(dst);
        sep();
        ss << "c[0x0][" << immStr(imm) << ']';
        break;
      case Opcode::ST:
      case Opcode::STG:
      case Opcode::STS:
      case Opcode::STL:
      case Opcode::SUST:
        emitAddr();
        emitReg(srcB);
        break;
      case Opcode::ATOM:
      case Opcode::ATOMS:
        emitReg(dst);
        emitAddr();
        emitReg(srcB);
        if (atom == AtomOp::Cas)
            emitReg(srcC);
        break;
      case Opcode::RED:
        emitAddr();
        emitReg(srcB);
        break;
      case Opcode::VOTE:
        if (vote == VoteMode::Ballot)
            emitReg(dst);
        else
            emitPred(pDst);
        emitPred(pSrc, pSrcNeg);
        break;
      case Opcode::SHFL:
        emitReg(dst);
        emitReg(srcA);
        emitB();
        break;
      case Opcode::S2R:
        emitReg(dst);
        sep();
        ss << sregName(sreg);
        break;
      default:
        // Two-source ALU shape.
        emitReg(dst);
        emitReg(srcA);
        emitB();
        break;
    }
    return ss.str();
}

} // namespace sassi::sass
