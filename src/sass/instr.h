/**
 * @file
 * The machine-instruction representation of the SASS-like ISA.
 *
 * Program counters are instruction indices within a kernel; branch
 * and SSY targets are therefore plain indices, which keeps the
 * SASSI splicing pass (which renumbers instructions) simple and
 * explicit.
 */

#ifndef SASSI_SASS_INSTR_H
#define SASSI_SASS_INSTR_H

#include <cstdint>
#include <string>
#include <vector>

#include "sass/opcode.h"
#include "sass/reg.h"

namespace sassi::sass {

/** Address space of a memory operation. */
enum class MemSpace : uint8_t {
    Generic,  //!< Resolved by address window at execution time.
    Global,
    Shared,
    Local,
    Constant,
    Texture,
    Surface,
};

/** Integer/float comparison operators for ISETP/FSETP/IMNMX. */
enum class CmpOp : uint8_t { LT, EQ, LE, GT, NE, GE };

/** LOP logic operations. */
enum class LogicOp : uint8_t { And, Or, Xor, PassB, Not };

/** VOTE modes. */
enum class VoteMode : uint8_t { All, Any, Ballot };

/** SHFL modes. */
enum class ShflMode : uint8_t { Idx, Up, Down, Bfly };

/** Atomic operations. */
enum class AtomOp : uint8_t { Add, Min, Max, And, Or, Xor, Exch, Cas };

/** MUFU (multi-function unit) operations. */
enum class MufuOp : uint8_t { Rcp, Sqrt, Rsq, Lg2, Ex2, Sin, Cos };

/** Special registers readable via S2R. */
enum class SpecialReg : uint8_t {
    TidX, TidY, TidZ,
    CtaIdX, CtaIdY, CtaIdZ,
    NTidX, NTidY, NTidZ,
    NCtaIdX, NCtaIdY, NCtaIdZ,
    LaneId, WarpId, Clock,
};

/**
 * One machine instruction. Every instruction carries an optional
 * guard predicate (@P / @!P); guarded-false lanes are nullified.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;

    /** Guard predicate index; PT means unconditional. */
    PredId guard = PT;
    /** Negate the guard (@!P). */
    bool guardNeg = false;

    /** Destination GPR (RZ discards). Wide results use dst..dst+n. */
    RegId dst = RZ;
    /** Source GPRs. For memory ops srcA is the address (pair) base. */
    RegId srcA = RZ;
    RegId srcB = RZ;
    RegId srcC = RZ;
    /** When set, the B operand is imm instead of srcB. */
    bool bIsImm = false;
    /** Immediate operand / memory offset / branch payload. */
    int64_t imm = 0;

    /** Destination predicate (ISETP/FSETP/PSETP/VOTE). */
    PredId pDst = PT;
    /** Source predicate (SEL/PSETP combine/VOTE input). */
    PredId pSrc = PT;
    bool pSrcNeg = false;

    CmpOp cmp = CmpOp::EQ;
    LogicOp logic = LogicOp::And;
    VoteMode vote = VoteMode::Ballot;
    ShflMode shfl = ShflMode::Idx;
    AtomOp atom = AtomOp::Add;
    MufuOp mufu = MufuOp::Rcp;
    SpecialReg sreg = SpecialReg::TidX;

    MemSpace space = MemSpace::Generic;
    /** Memory access width in bytes: 1, 2, 4, 8, or 16. */
    uint8_t width = 4;
    /** IADD.CC: also write the carry flag. */
    bool setCC = false;
    /** IADD.X: also consume the carry flag. */
    bool useCC = false;
    /** Signed variant (loads sign-extend; SHR is arithmetic). */
    bool sExt = false;

    /** Branch/SSY/JCAL target: instruction index, or handler id for
     *  JCALs whose imm >= HandlerBase (see core/handler_registry.h). */
    int32_t target = -1;

    /** True for instructions injected by the SASSI pass. */
    bool synthetic = false;
    /** True for SASSI spill/fill traffic (paper's IsSpillOrFill). */
    bool spillFill = false;

    /** @return true when this op can write general registers. */
    bool writesGPR() const { return opFlags(op) & OF_WritesGPR; }

    /** @return true when this op touches memory. */
    bool isMem() const { return opFlags(op) & OF_Mem; }

    /** @return true when this op transfers control. */
    bool isControl() const { return opFlags(op) & OF_Control; }

    /** @return true for a guarded (conditional) control transfer. */
    bool isCondControl() const { return isControl() && guard != PT; }

    /** @return the number of consecutive GPRs a result occupies. */
    int dstRegCount() const;

    /** Collect the GPRs written by this instruction. */
    std::vector<RegId> dstRegs() const;

    /** Collect the GPRs read by this instruction. */
    std::vector<RegId> srcRegs() const;

    /** @return the guard + source predicates this instruction reads. */
    std::vector<PredId> srcPreds() const;

    /** @return the predicates written by this instruction. */
    std::vector<PredId> dstPreds() const;

    /** @return true if the address operand is a 64-bit register pair. */
    bool addrIsPair() const;

    /** Render a human-readable disassembly string. */
    std::string disasm() const;
};

/** @return the mnemonic of a comparison operator. */
std::string_view cmpName(CmpOp cmp);

/** @return the assembly name of a special register (SR_TID.X ...). */
std::string_view sregName(SpecialReg sr);

} // namespace sassi::sass

#endif // SASSI_SASS_INSTR_H
