/**
 * @file
 * The 32-bit insEncoding word SASSI stores into SASSIBeforeParams.
 *
 * The paper (Figure 2) passes each handler an insEncoding field that
 * "includes the instruction's opcode and other static properties";
 * the SASSIBeforeParams accessor methods (IsMem, IsControlXfer, ...)
 * decode it. We pack the opcode plus the classification flags and
 * the memory shape into one word so the handler-side accessors are a
 * pure decode, exactly like the real tool.
 *
 * Layout:
 *   [7:0]   opcode
 *   [8]     is memory
 *   [9]     reads memory
 *   [10]    writes memory
 *   [11]    atomic
 *   [12]    control transfer
 *   [13]    conditional control transfer
 *   [14]    call
 *   [15]    sync
 *   [16]    numeric
 *   [17]    texture
 *   [18]    surface
 *   [19]    SASSI spill/fill
 *   [20]    writes >= 1 GPR
 *   [23:21] log2(memory width in bytes)
 *   [26:24] memory space
 */

#ifndef SASSI_SASS_ENCODING_H
#define SASSI_SASS_ENCODING_H

#include <bit>

#include "sass/instr.h"

namespace sassi::sass {

/** Bit positions within insEncoding. */
namespace enc {
constexpr int OpcodeLo = 0;
constexpr uint32_t IsMem = 1u << 8;
constexpr uint32_t IsMemRead = 1u << 9;
constexpr uint32_t IsMemWrite = 1u << 10;
constexpr uint32_t IsAtomic = 1u << 11;
constexpr uint32_t IsControl = 1u << 12;
constexpr uint32_t IsCondControl = 1u << 13;
constexpr uint32_t IsCall = 1u << 14;
constexpr uint32_t IsSync = 1u << 15;
constexpr uint32_t IsNumeric = 1u << 16;
constexpr uint32_t IsTexture = 1u << 17;
constexpr uint32_t IsSurface = 1u << 18;
constexpr uint32_t IsSpillFill = 1u << 19;
constexpr uint32_t WritesGPR = 1u << 20;
constexpr int WidthLo = 21;
constexpr int SpaceLo = 24;
} // namespace enc

/** Pack the static properties of an instruction into insEncoding. */
inline uint32_t
encodeInstr(const Instruction &ins)
{
    uint32_t flags = opFlags(ins.op);
    uint32_t word = static_cast<uint32_t>(ins.op);
    if (flags & OF_Mem)
        word |= enc::IsMem;
    if (flags & OF_MemRead)
        word |= enc::IsMemRead;
    if (flags & OF_MemWrite)
        word |= enc::IsMemWrite;
    if (flags & OF_Atomic)
        word |= enc::IsAtomic;
    if (flags & OF_Control)
        word |= enc::IsControl;
    if (ins.isCondControl())
        word |= enc::IsCondControl;
    if (flags & OF_Call)
        word |= enc::IsCall;
    if (flags & OF_Sync)
        word |= enc::IsSync;
    if (flags & OF_Numeric)
        word |= enc::IsNumeric;
    if (flags & OF_Texture)
        word |= enc::IsTexture;
    if (flags & OF_Surface)
        word |= enc::IsSurface;
    if (ins.spillFill)
        word |= enc::IsSpillFill;
    if (!ins.dstRegs().empty())
        word |= enc::WritesGPR;
    word |= static_cast<uint32_t>(std::bit_width(
                static_cast<unsigned>(ins.width)) - 1) << enc::WidthLo;
    word |= static_cast<uint32_t>(ins.space) << enc::SpaceLo;
    return word;
}

/** @return the opcode packed into an insEncoding word. */
inline Opcode
encodedOpcode(uint32_t word)
{
    return static_cast<Opcode>(word & 0xff);
}

/** @return the memory width in bytes packed into insEncoding. */
inline int
encodedWidth(uint32_t word)
{
    return 1 << ((word >> enc::WidthLo) & 0x7);
}

/** @return the memory space packed into insEncoding. */
inline MemSpace
encodedSpace(uint32_t word)
{
    return static_cast<MemSpace>((word >> enc::SpaceLo) & 0x7);
}

} // namespace sassi::sass

#endif // SASSI_SASS_ENCODING_H
