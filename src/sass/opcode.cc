#include "sass/opcode.h"

#include <array>

#include "util/logging.h"

namespace sassi::sass {

namespace {

struct OpInfo
{
    std::string_view name;
    uint32_t flags;
};

constexpr std::array<OpInfo, NumOpcodes> kOpTable = {{
#define SASSI_INFO_ENTRY(name, flags) {#name, (flags)},
    SASSI_OPCODE_LIST(SASSI_INFO_ENTRY)
#undef SASSI_INFO_ENTRY
}};

} // namespace

uint32_t
opFlags(Opcode op)
{
    panic_if(op >= Opcode::NumOpcodes, "bad opcode %d",
             static_cast<int>(op));
    return kOpTable[static_cast<size_t>(op)].flags;
}

std::string_view
opName(Opcode op)
{
    panic_if(op >= Opcode::NumOpcodes, "bad opcode %d",
             static_cast<int>(op));
    return kOpTable[static_cast<size_t>(op)].name;
}

Opcode
opFromName(std::string_view name)
{
    for (size_t i = 0; i < kOpTable.size(); ++i) {
        if (kOpTable[i].name == name)
            return static_cast<Opcode>(i);
    }
    return Opcode::NumOpcodes;
}

} // namespace sassi::sass
