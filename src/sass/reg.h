/**
 * @file
 * Register-file conventions of the SASS-like ISA.
 *
 * Mirrors the structure SASSI depends on in NVIDIA's native ISA:
 * 32-bit general-purpose registers R0..R254 with RZ reading as zero,
 * seven predicate registers P0..P6 with PT reading as true, and a
 * carry/condition flag written by IADD.CC and consumed by IADD.X.
 * 64-bit quantities (notably addresses) live in aligned register
 * pairs (Rn holds the low word, Rn+1 the high word).
 */

#ifndef SASSI_SASS_REG_H
#define SASSI_SASS_REG_H

#include <cstdint>

namespace sassi::sass {

/** Index of a general-purpose register. */
using RegId = uint8_t;

/** The zero register: reads as 0, writes are discarded. */
constexpr RegId RZ = 255;

/** Index of a predicate register. */
using PredId = uint8_t;

/** The true predicate: reads as 1, writes are discarded. */
constexpr PredId PT = 7;

/** Number of writable predicate registers (P0..P6). */
constexpr int NumPred = 7;

/** SIMT warp width, fixed at 32 like every NVIDIA architecture. */
constexpr int WarpSize = 32;

/** Calling convention constants for the on-device ABI (see paper §2.2).
 *
 * SASSI builds ABI-compliant calls: R1 is the stack pointer, the
 * first 64-bit pointer argument travels in R4:R5, the second in
 * R6:R7, and the callee may clobber R0..R15 except R1. Handlers are
 * compiled with -maxrregcount=16, the ABI minimum (paper §3.2).
 */
namespace abi {

/** Stack-pointer register. */
constexpr RegId StackPtr = 1;

/** First pointer argument (low word); high word is Arg0Lo+1. */
constexpr RegId Arg0Lo = 4;

/** Second pointer argument (low word); high word is Arg1Lo+1. */
constexpr RegId Arg1Lo = 6;

/** Handlers may use at most this many registers (paper's cap). */
constexpr int HandlerMaxRegs = 16;

/** @return true if the callee may clobber GPR r across a call. */
constexpr bool
callerSaved(RegId r)
{
    return r < HandlerMaxRegs && r != StackPtr;
}

} // namespace abi

} // namespace sassi::sass

#endif // SASSI_SASS_REG_H
