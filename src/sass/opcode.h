/**
 * @file
 * Opcodes of the SASS-like ISA and their static classification.
 *
 * The classification flags are exactly the properties SASSI exposes
 * to instrumentation handlers through SASSIBeforeParams (IsMem,
 * IsControlXfer, IsSync, IsNumeric, IsTexture, ...; paper Figure 2b).
 */

#ifndef SASSI_SASS_OPCODE_H
#define SASSI_SASS_OPCODE_H

#include <cstdint>
#include <string_view>

namespace sassi::sass {

/** X-macro listing: OP(name, flags). */
#define SASSI_OPCODE_LIST(OP)                                              \
    OP(NOP,    OF_None)                                                    \
    /* Integer / move */                                                   \
    OP(MOV,    OF_WritesGPR)                                               \
    OP(MOV32I, OF_WritesGPR)                                               \
    OP(SEL,    OF_WritesGPR)                                               \
    OP(IADD,   OF_WritesGPR)                                               \
    OP(IADD32I, OF_WritesGPR)                                              \
    OP(IMUL,   OF_WritesGPR)                                               \
    OP(IMAD,   OF_WritesGPR)                                               \
    OP(IMNMX,  OF_WritesGPR)                                               \
    OP(SHL,    OF_WritesGPR)                                               \
    OP(SHR,    OF_WritesGPR)                                               \
    OP(LOP,    OF_WritesGPR)                                               \
    OP(POPC,   OF_WritesGPR)                                               \
    OP(FLO,    OF_WritesGPR)                                               \
    OP(ISETP,  OF_WritesPred)                                              \
    OP(PSETP,  OF_WritesPred)                                              \
    OP(P2R,    OF_WritesGPR)                                               \
    OP(R2P,    OF_WritesPred)                                              \
    /* Floating point (the "numeric" class) */                             \
    OP(FADD,   OF_WritesGPR | OF_Numeric)                                  \
    OP(FMUL,   OF_WritesGPR | OF_Numeric)                                  \
    OP(FFMA,   OF_WritesGPR | OF_Numeric)                                  \
    OP(FMNMX,  OF_WritesGPR | OF_Numeric)                                  \
    OP(MUFU,   OF_WritesGPR | OF_Numeric)                                  \
    OP(I2F,    OF_WritesGPR | OF_Numeric)                                  \
    OP(F2I,    OF_WritesGPR | OF_Numeric)                                  \
    OP(FSETP,  OF_WritesPred | OF_Numeric)                                 \
    /* Memory */                                                           \
    OP(LD,     OF_Mem | OF_MemRead | OF_WritesGPR)                         \
    OP(ST,     OF_Mem | OF_MemWrite)                                       \
    OP(LDG,    OF_Mem | OF_MemRead | OF_WritesGPR)                         \
    OP(STG,    OF_Mem | OF_MemWrite)                                       \
    OP(LDS,    OF_Mem | OF_MemRead | OF_WritesGPR)                         \
    OP(STS,    OF_Mem | OF_MemWrite)                                       \
    OP(LDL,    OF_Mem | OF_MemRead | OF_WritesGPR)                         \
    OP(STL,    OF_Mem | OF_MemWrite)                                       \
    OP(LDC,    OF_Mem | OF_MemRead | OF_WritesGPR)                         \
    OP(ATOM,   OF_Mem | OF_MemRead | OF_MemWrite | OF_Atomic | OF_WritesGPR) \
    OP(ATOMS,  OF_Mem | OF_MemRead | OF_MemWrite | OF_Atomic | OF_WritesGPR) \
    OP(RED,    OF_Mem | OF_MemWrite | OF_Atomic)                           \
    OP(TLD,    OF_Mem | OF_MemRead | OF_WritesGPR | OF_Texture)            \
    OP(SULD,   OF_Mem | OF_MemRead | OF_WritesGPR | OF_Surface)            \
    OP(SUST,   OF_Mem | OF_MemWrite | OF_Surface)                          \
    /* Control flow */                                                     \
    OP(BRA,    OF_Control)                                                 \
    OP(JCAL,   OF_Control | OF_Call)                                       \
    OP(RET,    OF_Control)                                                 \
    OP(EXIT,   OF_Control | OF_Exit)                                       \
    OP(BPT,    OF_Control)                                                 \
    OP(SSY,    OF_Sync)                                                    \
    OP(SYNC,   OF_Control | OF_Sync)                                       \
    OP(BAR,    OF_Sync)                                                    \
    OP(MEMBAR, OF_Sync)                                                    \
    /* Warp-wide and special */                                            \
    OP(VOTE,   OF_WritesGPR | OF_WritesPred)                               \
    OP(SHFL,   OF_WritesGPR)                                               \
    OP(S2R,    OF_WritesGPR)                                               \
    OP(L2G,    OF_WritesGPR)

/** Static classification flags of an opcode. */
enum OpFlags : uint32_t {
    OF_None       = 0,
    OF_Mem        = 1u << 0,  //!< Touches memory.
    OF_MemRead    = 1u << 1,  //!< Reads memory.
    OF_MemWrite   = 1u << 2,  //!< Writes memory.
    OF_Atomic     = 1u << 3,  //!< Atomic read-modify-write.
    OF_Control    = 1u << 4,  //!< Transfers control.
    OF_Call       = 1u << 5,  //!< Is a call.
    OF_Sync       = 1u << 6,  //!< Synchronization (SSY/SYNC/BAR/MEMBAR).
    OF_Numeric    = 1u << 7,  //!< Floating-point datapath.
    OF_Texture    = 1u << 8,  //!< Texture access.
    OF_Surface    = 1u << 9,  //!< Surface access.
    OF_WritesGPR  = 1u << 10, //!< May write a general-purpose register.
    OF_WritesPred = 1u << 11, //!< May write a predicate register.
    OF_Exit       = 1u << 12, //!< Terminates the thread.
};

/** Machine opcodes. */
enum class Opcode : uint8_t {
#define SASSI_ENUM_ENTRY(name, flags) name,
    SASSI_OPCODE_LIST(SASSI_ENUM_ENTRY)
#undef SASSI_ENUM_ENTRY
    NumOpcodes
};

/** Number of opcodes in the ISA. */
constexpr int NumOpcodes = static_cast<int>(Opcode::NumOpcodes);

/** @return the static classification flags of op. */
uint32_t opFlags(Opcode op);

/** @return the mnemonic of op. */
std::string_view opName(Opcode op);

/** @return the opcode with the given mnemonic, or NumOpcodes. */
Opcode opFromName(std::string_view name);

} // namespace sassi::sass

#endif // SASSI_SASS_OPCODE_H
