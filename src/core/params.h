/**
 * @file
 * Handler-visible parameter classes: SASSIBeforeParams,
 * SASSIMemoryParams, SASSICondBranchParams, SASSIRegisterParams,
 * SASSIAfterParams.
 *
 * These mirror the paper's Figure 2(b)/2(c) classes. Each is a thin
 * view over the stack frame the injected code materialized in the
 * thread's (simulated) local memory: the accessors read the same
 * bytes the STL stores wrote, through the generic pointer the JCAL
 * received in R4:R5 — so the data path is exactly the paper's, only
 * the method bodies run on the host.
 */

#ifndef SASSI_CORE_PARAMS_H
#define SASSI_CORE_PARAMS_H

#include <cstring>

#include "sass/encoding.h"
#include "simt/executor.h"
#include "core/site.h"

namespace sassi::core {

/** Memory-space taxonomy exposed to handlers. */
enum class SASSIMemoryDomain : int32_t {
    Generic = 0,
    Global = 1,
    Shared = 2,
    Local = 3,
    Constant = 4,
    Texture = 5,
    Surface = 6,
};

/**
 * Record on the current dispatch (if any) that handler code wrote
 * frame-aliasing device memory. Out of line: params.h cannot see
 * DispatchState (runtime.h includes this header).
 */
void noteFrameWrite();

/** Shared plumbing of all parameter views: one lane at one site. */
class ParamsBase
{
  public:
    ParamsBase() = default;

    /**
     * @param exec The running executor.
     * @param warp The dispatching warp.
     * @param lane This thread's lane.
     * @param frame Generic address of the parameter frame (the bp
     *              pointer passed in R4:R5).
     * @param site Static site metadata.
     * @param host Optional host pointer to the same frame bytes.
     *             When set (the fused-site inline dispatch), frame
     *             accesses skip the generic-address resolution —
     *             the caller already bounds-checked the frame.
     */
    ParamsBase(simt::Executor *exec, simt::Warp *warp, int lane,
               uint64_t frame, const SiteInfo *site,
               uint8_t *host = nullptr)
        : exec_(exec), warp_(warp), lane_(lane), frame_(frame),
          site_(site), host_(host)
    {}

    /**
     * Repoint the view at a new parameter frame, keeping the
     * (exec, warp, lane, site) binding. The inline dispatch path's
     * per-worker env arena uses this: everything except the frame
     * location is invariant across dispatches of one (site, warp,
     * CTA), so refreshing a view is two stores instead of a full
     * reconstruction.
     */
    void
    rebindFrame(uint64_t frame, uint8_t *host)
    {
        frame_ = frame;
        host_ = host;
    }

  protected:
    int32_t
    read32(int64_t off) const
    {
        if (host_) {
            int32_t v;
            std::memcpy(&v, host_ + off, 4);
            return v;
        }
        return static_cast<int32_t>(
            exec_->readGeneric(frame_ + static_cast<uint64_t>(off), 4));
    }

    int64_t
    read64(int64_t off) const
    {
        if (host_) {
            int64_t v;
            std::memcpy(&v, host_ + off, 8);
            return v;
        }
        return static_cast<int64_t>(
            exec_->readGeneric(frame_ + static_cast<uint64_t>(off), 8));
    }

    void
    write32(int64_t off, int32_t v) const
    {
        noteFrameWrite();
        if (host_) {
            std::memcpy(host_ + off, &v, 4);
            return;
        }
        exec_->writeGeneric(frame_ + static_cast<uint64_t>(off),
                            static_cast<uint64_t>(
                                static_cast<uint32_t>(v)), 4);
    }

    simt::Executor *exec_ = nullptr;
    simt::Warp *warp_ = nullptr;
    int lane_ = 0;
    uint64_t frame_ = 0;
    const SiteInfo *site_ = nullptr;
    uint8_t *host_ = nullptr;
};

/**
 * Per-site static/dynamic facts handed to every handler, paper
 * Figure 2(b). Decodes the insEncoding word the injected code
 * stored, exactly like the real class.
 */
class SASSIBeforeParams : public ParamsBase
{
  public:
    using ParamsBase::ParamsBase;

    /** Unique site id. */
    int32_t GetID() const { return read32(frame::Id); }

    /** True iff the guarded instruction will actually execute. */
    bool
    GetInstrWillExecute() const
    {
        return read32(frame::InstrWillExecute) != 0;
    }

    /** Pseudo address of the containing function. */
    int32_t GetFnAddr() const { return read32(frame::FnAddr); }

    /** Instruction offset within the function (pre-SASSI PC). */
    int32_t GetInsOffset() const { return read32(frame::InsOffset); }

    /** Virtual instruction address (fnAddr + 8 * offset). */
    int32_t
    GetInsAddr() const
    {
        return GetFnAddr() + 8 * GetInsOffset();
    }

    /** Raw encoding word with opcode and static properties. */
    uint32_t
    GetInsEncoding() const
    {
        return static_cast<uint32_t>(read32(frame::InsEncoding));
    }

    /** Opcode of the instrumented instruction. */
    sass::Opcode
    GetOpcode() const
    {
        return sass::encodedOpcode(GetInsEncoding());
    }

    bool IsMem() const { return GetInsEncoding() & sass::enc::IsMem; }
    bool
    IsMemRead() const
    {
        return GetInsEncoding() & sass::enc::IsMemRead;
    }
    bool
    IsMemWrite() const
    {
        return GetInsEncoding() & sass::enc::IsMemWrite;
    }
    bool
    IsSpillOrFill() const
    {
        return GetInsEncoding() & sass::enc::IsSpillFill;
    }
    bool
    IsSurfaceMemory() const
    {
        return GetInsEncoding() & sass::enc::IsSurface;
    }
    bool
    IsControlXfer() const
    {
        return GetInsEncoding() & sass::enc::IsControl;
    }
    bool
    IsCondControlXfer() const
    {
        return GetInsEncoding() & sass::enc::IsCondControl;
    }
    bool IsCall() const { return GetInsEncoding() & sass::enc::IsCall; }
    bool IsSync() const { return GetInsEncoding() & sass::enc::IsSync; }
    bool
    IsNumeric() const
    {
        return GetInsEncoding() & sass::enc::IsNumeric;
    }
    bool
    IsTexture() const
    {
        return GetInsEncoding() & sass::enc::IsTexture;
    }
    bool
    IsAtomic() const
    {
        return GetInsEncoding() & sass::enc::IsAtomic;
    }
    bool
    WritesGPR() const
    {
        return GetInsEncoding() & sass::enc::WritesGPR;
    }
};

/** After-sites see the same frame; the alias mirrors the paper. */
using SASSIAfterParams = SASSIBeforeParams;

/** Memory-operation details, paper Figure 2(c). */
class SASSIMemoryParams : public ParamsBase
{
  public:
    using ParamsBase::ParamsBase;

    /** The effective address this lane touches. */
    int64_t GetAddress() const { return read64(frame::MemAddress); }

    bool
    IsLoad() const
    {
        return properties() & frame::PropLoad;
    }

    bool
    IsStore() const
    {
        return properties() & frame::PropStore;
    }

    bool
    IsAtomic() const
    {
        return properties() & frame::PropAtomic;
    }

    /** Not modeled; always false (documented substitution). */
    bool IsUniform() const { return false; }

    /** Not modeled; always false (documented substitution). */
    bool IsVolatile() const { return false; }

    /** Access width in bytes. */
    int32_t GetWidth() const { return read32(frame::MemWidth); }

    /** Address-space domain. */
    SASSIMemoryDomain
    GetDomain() const
    {
        return static_cast<SASSIMemoryDomain>(read32(frame::MemDomain));
    }

  private:
    uint32_t
    properties() const
    {
        return static_cast<uint32_t>(read32(frame::MemProperties));
    }
};

/** Conditional-branch details (case study I). */
class SASSICondBranchParams : public ParamsBase
{
  public:
    using ParamsBase::ParamsBase;

    /** True when this lane will take the branch. */
    bool GetDirection() const { return read32(frame::BrDirection) != 0; }

    /** Taken-path PC (pre-SASSI indices). */
    int32_t GetTakenPC() const { return read32(frame::BrTarget); }

    /** Fall-through PC (pre-SASSI indices). */
    int32_t
    GetFallthroughPC() const
    {
        return read32(frame::BrFallthrough);
    }

    /** True for a guarded (conditional) branch. */
    bool
    IsConditional() const
    {
        return read32(frame::BrIsConditional) != 0;
    }
};

/** Handle naming one destination register. */
struct SASSIGPRRegInfo
{
    sass::RegId reg = sass::RZ;
};

/**
 * Register-write details (case studies III and IV). GetRegValue
 * reads through the spill slots when the register was spilled for
 * the ABI call — which is why the paper's GetRegValue takes the
 * SASSIAfterParams pointer — and SetRegValue writes back through
 * the same slots, so the epilogue's fills restore the *modified*
 * value into the register file. That is exactly the mechanism that
 * lets SASSI-based injection corrupt ISA-visible state (§8).
 */
class SASSIRegisterParams : public ParamsBase
{
  public:
    using ParamsBase::ParamsBase;

    /** Number of destination GPRs the instruction writes. */
    int32_t GetNumGPRDsts() const { return read32(frame::RegNumDsts); }

    /** Handle for destination d. */
    SASSIGPRRegInfo
    GetGPRDst(int d) const
    {
        return {static_cast<sass::RegId>(read32(frame::RegIds + 4 * d))};
    }

    /** Architected register number of a handle. */
    int32_t
    GetRegNum(SASSIGPRRegInfo info) const
    {
        return info.reg;
    }

    /** Read the current value of a destination register. */
    uint32_t GetRegValue(SASSIGPRRegInfo info) const;

    /** Overwrite a destination register (error injection). */
    void SetRegValue(SASSIGPRRegInfo info, uint32_t value) const;

    /** Bitmask of destination predicate registers. */
    uint32_t
    GetDstPredMask() const
    {
        return static_cast<uint32_t>(read32(frame::RegPredMask));
    }

    /** Read a predicate register through the PR spill slot. */
    bool GetPredValue(int pred) const;

    /** Overwrite a predicate register (restored by the epilogue). */
    void SetPredValue(int pred, bool value) const;

    /** True when the instruction writes the carry flag. */
    bool
    WritesCC() const
    {
        return read32(frame::RegWritesCC) != 0;
    }

    /** Read the carry flag through the CC spill slot. */
    bool GetCCValue() const;

    /** Overwrite the carry flag. */
    void SetCCValue(bool value) const;
};

} // namespace sassi::core

#endif // SASSI_CORE_PARAMS_H
