/**
 * @file
 * The SASSI runtime: site registry, handler registration, and the
 * JCAL dispatcher that executes user handlers warp-synchronously.
 *
 * In the real tool, handlers are CUDA functions compiled with
 * -maxrregcount=16 and linked with nvlink (paper Figure 1); the
 * injected JCAL transfers control to them on the GPU. Here the
 * handler bodies are host C++ closures executed on one fiber per
 * active lane, so warp-wide intrinsics (__ballot, __shfl, __all)
 * synchronize exactly as they would on hardware, and all parameter
 * data still flows through the simulated stack frames the injected
 * SASS materialized.
 */

#ifndef SASSI_CORE_RUNTIME_H
#define SASSI_CORE_RUNTIME_H

#include <functional>
#include <vector>

#include "core/options.h"
#include "core/params.h"
#include "core/site.h"
#include "simt/device.h"
#include "util/fiber.h"
#include "util/metrics.h"

namespace sassi::core {

/** Everything a handler can see about one lane at one site. */
struct HandlerEnv
{
    /** Site/instruction facts (also the after-params view). */
    SASSIBeforeParams bp;

    /** Memory params; valid when site->hasMemParams. */
    SASSIMemoryParams mp;

    /** Branch params; valid when site->hasBranchParams. */
    SASSICondBranchParams brp;

    /** Register params; valid when site->hasRegParams. */
    SASSIRegisterParams rp;

    /** Static site metadata. */
    const SiteInfo *site = nullptr;

    int lane = 0;
    simt::Dim3 threadIdx;
    simt::Dim3 blockIdx;
    simt::Dim3 blockDim;
    simt::Dim3 gridDim;

    /** Bind every field for one lane at one site (full rebuild). */
    void
    bind(simt::Executor &exec, simt::Warp &warp, int lane_id,
         const SiteInfo &site_info, uint64_t frame, uint8_t *host)
    {
        bp = SASSIBeforeParams(&exec, &warp, lane_id, frame,
                               &site_info, host);
        mp = SASSIMemoryParams(&exec, &warp, lane_id, frame,
                               &site_info, host);
        brp = SASSICondBranchParams(&exec, &warp, lane_id, frame,
                                    &site_info, host);
        rp = SASSIRegisterParams(&exec, &warp, lane_id, frame,
                                 &site_info, host);
        site = &site_info;
        lane = lane_id;
        threadIdx = exec.threadIdx(warp, lane_id);
        blockIdx = exec.ctaId();
        blockDim = exec.blockDim();
        gridDim = exec.gridDim();
    }

    /** Repoint all four views at a new frame (invariants kept). */
    void
    rebindFrame(uint64_t frame, uint8_t *host)
    {
        bp.rebindFrame(frame, host);
        mp.rebindFrame(frame, host);
        brp.rebindFrame(frame, host);
        rp.rebindFrame(frame, host);
    }
};

/** User handler: one invocation per active lane per site. */
using Handler = std::function<void(const HandlerEnv &)>;

/**
 * Warp-level view handed to a HandlerTraits::warpHandler: the
 * per-lane environments (indexed by lane id; only activeMask lanes
 * are populated) of one dispatch. The warp handler sees all lanes
 * at once, so it can compute ballots/reductions directly instead of
 * rendezvousing through fibers.
 */
struct WarpHandlerEnv
{
    const HandlerEnv *envs = nullptr; //!< Indexed by lane id.
    uint32_t activeMask = 0;
};

/** Warp-level handler: one invocation per active warp per site. */
using WarpHandler = std::function<void(const WarpHandlerEnv &)>;

/**
 * Devirtualized warp-level handler: a plain function pointer plus an
 * opaque context, so the fused-site fast path's per-dispatch cost is
 * one predictable indirect call (no std::function dispatch). The
 * bundled tools register this form directly; a std::function
 * WarpHandler still works through a trampoline whose context is the
 * function object itself.
 */
using WarpHandlerFn = void (*)(const void *ctx,
                               const WarpHandlerEnv &we);

/** Static properties of a registered handler. */
struct HandlerTraits
{
    /**
     * Whether the handler uses warp-wide intrinsics (__ballot,
     * __shfl, __all). Warp-synchronous handlers execute on one
     * fiber per lane so the intrinsics can rendezvous; handlers
     * that only use atomics and plain loads/stores (like the
     * paper's Figure 3 counter handler) run on a fast path that
     * simply iterates the active lanes.
     */
    bool warpSynchronous = true;

    /**
     * Whether the handler may be invoked inline from the
     * interpreter's fused-site fast path (simt/site_fuse.h), with no
     * fiber group backing it. An inline-safe handler must never
     * suspend (no warp-rendezvous intrinsics outside warpHandler)
     * and must not read scratch registers that were not spilled for
     * the call: the fused path calls it before the ABI scratch
     * registers (R2-R13) take their post-prologue values, so
     * SASSIRegisterParams reads of unspilled scratch registers would
     * differ from the fiber path. All bundled counters/profilers
     * satisfy this; anything that suspends (value profiler's
     * spin-lock ballot loops) or depends on raw scratch state must
     * leave it false.
     */
    bool reentrantSafe = false;

    /**
     * Warp-level equivalent of the per-lane handler, required for a
     * warpSynchronous handler to qualify for inline dispatch: the
     * fused path cannot rendezvous lanes through fibers, so the
     * handler author supplies the whole-warp computation explicitly.
     * Must be observationally identical to running the per-lane
     * handler on fibers (same device writes, same order of atomics
     * per warp).
     */
    WarpHandler warpHandler;

    /**
     * Devirtualized form of warpHandler: when warpFn is set it is
     * preferred over the std::function (warpCtx is passed through
     * verbatim). The two must be behaviorally identical when both
     * are present.
     */
    WarpHandlerFn warpFn = nullptr;
    const void *warpCtx = nullptr;

    /**
     * Optional warp-level predicate evaluated before any lane's
     * handler body runs; returning false skips the warp entirely.
     * This models a handler whose leading exit test is warp-uniform
     * (the error injector's kernel/thread match): the real tool
     * still pays the call on the GPU, so the modeled handler cost
     * is charged either way.
     */
    std::function<bool(simt::Executor &, simt::Warp &,
                       const SiteInfo &)> warpFilter;
};

/** Per-dispatch shared state consulted by the CUDA intrinsics. */
struct DispatchState
{
    simt::Executor *exec = nullptr;
    simt::Warp *warp = nullptr;
    const SiteInfo *site = nullptr;
    uint32_t activeMask = 0;
    FiberGroup *fibers = nullptr;
    std::vector<HandlerEnv> envs; //!< Indexed by lane id.
    /** Set by the params/intrinsics write paths when the handler
     *  stores into device memory the site frame could alias (the
     *  frame itself or the lane-local window). Clear at the end of
     *  an inline dispatch means the epilogue's identity fills can
     *  be skipped. */
    bool frameWritten = false;
    bool faulted = false;
    simt::SimFault fault{simt::Outcome::Ok, ""};
};

/** @return the dispatch currently executing on this thread. */
DispatchState *currentDispatch();

/**
 * Per-site dispatch plan, resolved once per launch (prepareLaunch)
 * instead of per dispatch: the flavor-selected handler and traits,
 * the devirtualized warp-handler target, and the pre-computed
 * inline-dispatchability answer. Everything the hot path previously
 * re-derived from sites_.at() + trait checks + std::function probes
 * is a flat indexed load here.
 */
struct SiteDispatchRecord
{
    const SiteInfo *site = nullptr;
    const Handler *handler = nullptr; //!< Null when no handler set.
    const HandlerTraits *traits = nullptr;
    /** Resolved warp-level entry: direct warpFn, or a trampoline
     *  over the std::function warpHandler (ctx = the function
     *  object). Null when the site has no warp-level body. */
    WarpHandlerFn warpFn = nullptr;
    const void *warpCtx = nullptr;
    bool inlineOk = false;     //!< inlineDispatchable() answer.
    bool hasFilter = false;    //!< traits->warpFilter set.
    bool warpSynchronous = true;
};

/**
 * One SASSI instrumentation session over one device's module.
 * Construction installs the runtime as the device's handler
 * dispatcher; destruction removes it.
 */
class SassiRuntime : public simt::HandlerDispatcher
{
  public:
    explicit SassiRuntime(simt::Device &dev);
    ~SassiRuntime() override;

    SassiRuntime(const SassiRuntime &) = delete;
    SassiRuntime &operator=(const SassiRuntime &) = delete;

    /**
     * Run the SASSI pass over every kernel of the device's loaded
     * module, in place. May be called once per runtime.
     */
    void instrument(const InstrumentOptions &opts);

    /** Install the handler for before/entry/exit/header sites. */
    void
    setBeforeHandler(Handler h, HandlerTraits traits = {})
    {
        before_ = std::move(h);
        before_traits_ = std::move(traits);
        records_dirty_ = true;
    }

    /** Install the handler for after sites. */
    void
    setAfterHandler(Handler h, HandlerTraits traits = {})
    {
        after_ = std::move(h);
        after_traits_ = std::move(traits);
        records_dirty_ = true;
    }

    /** Register a site (used by the pass). @return its key. */
    int32_t addSite(SiteInfo site);

    /** @return site metadata by key. */
    const SiteInfo &
    site(int32_t key) const
    {
        return sites_.at(static_cast<size_t>(key));
    }

    /** @return the number of registered sites. */
    size_t numSites() const { return sites_.size(); }

    /** @return the options the module was instrumented with. */
    const InstrumentOptions &options() const { return opts_; }

    /**
     * Static instrumentation metrics, built once by instrument():
     * site counts per flavor ("core/sites/<flavor>") and the static
     * spill footprint ("core/static/spill_slots", ".../spill_bytes").
     * Dynamic per-site call counts land in each launch's registry
     * (LaunchResult::metrics) under "core/...".
     */
    const Metrics &staticMetrics() const { return static_metrics_; }

    /** @return the attached device. */
    simt::Device &device() { return dev_; }

    void dispatch(simt::Executor &exec, simt::Warp &warp,
                  int32_t site_key) override;

    /**
     * Rebuild the per-site dispatch records. Launches are serialized
     * by the device, so this runs with no worker threads alive; the
     * records stay valid (and lock-free to read) for the whole
     * launch because handler registration mid-launch is not
     * supported.
     */
    void prepareLaunch() override;

    /**
     * A site is inline-dispatchable when its handler is marked
     * reentrantSafe and either iterates lanes directly
     * (!warpSynchronous) or supplies a warpHandler; a null handler
     * (metrics-only dispatch) always qualifies.
     */
    bool inlineDispatchable(int32_t site_key) override;

    bool dispatchInline(simt::Executor &exec, simt::Warp &warp,
                        int32_t site_key, const uint64_t *frame_addr,
                        uint8_t *const *frame_host) override;

  private:
    simt::Device &dev_;
    std::vector<SiteInfo> sites_;
    Handler before_;
    Handler after_;
    HandlerTraits before_traits_;
    HandlerTraits after_traits_;
    InstrumentOptions opts_;
    Metrics static_metrics_;
    bool instrumented_ = false;

    /** @return the dispatch record for site_key, building the table
     *  first if registration changed since the last launch. */
    const SiteDispatchRecord &record(int32_t site_key);

    std::vector<SiteDispatchRecord> records_;
    bool records_dirty_ = true;
};

/**
 * The SASSI pass itself, exposed for direct use on a Module (the
 * runtime's instrument() calls this on the device's module).
 * Registers every created site with the runtime and rewrites each
 * kernel: liveness-driven spills, frame construction, JCAL.
 */
void instrumentModule(ir::Module &module, const InstrumentOptions &opts,
                      SassiRuntime &runtime);

} // namespace sassi::core

#endif // SASSI_CORE_RUNTIME_H
