#include "core/params.h"

#include "core/runtime.h"
#include "util/logging.h"

namespace sassi::core {

void
noteFrameWrite()
{
    if (DispatchState *ds = currentDispatch())
        ds->frameWritten = true;
}

namespace {

/** Generic address of a register's spill slot at this site. */
uint64_t
spillSlotAddr(simt::Executor *exec, simt::Warp *warp, int lane,
              uint64_t frame_addr, const SiteInfo *site, int r)
{
    if (site->persistentSpills) {
        // The elide-redundant-spills optimization keeps spills in a
        // per-thread persistent region at local offset 0.
        return exec->localWindowAddr(*warp, lane) +
               static_cast<uint64_t>(frame::PersistBase + 4 * r);
    }
    return frame_addr + static_cast<uint64_t>(frame::gprSpillSlot(r));
}

} // namespace

uint32_t
SASSIRegisterParams::GetRegValue(SASSIGPRRegInfo info) const
{
    sass::RegId r = info.reg;
    if (r < 32 && (site_->spillMask >> r) & 1u) {
        // Frame-resident spill slots take the host fast path when
        // the caller provided one; persistent-region slots live at
        // an absolute local offset outside the frame, so they keep
        // the generic-address read.
        if (host_ && !site_->persistentSpills) {
            uint32_t v;
            std::memcpy(&v, host_ + frame::gprSpillSlot(r), 4);
            return v;
        }
        return static_cast<uint32_t>(exec_->readGeneric(
            spillSlotAddr(exec_, warp_, lane_, frame_, site_, r), 4));
    }
    return warp_->reg(lane_, r);
}

void
SASSIRegisterParams::SetRegValue(SASSIGPRRegInfo info, uint32_t value) const
{
    sass::RegId r = info.reg;
    if (r < 32 && (site_->spillMask >> r) & 1u) {
        // The epilogue's fill will move the modified value into the
        // register file — the paper's state-corruption mechanism.
        noteFrameWrite();
        if (host_ && !site_->persistentSpills) {
            std::memcpy(host_ + frame::gprSpillSlot(r), &value, 4);
            return;
        }
        exec_->writeGeneric(
            spillSlotAddr(exec_, warp_, lane_, frame_, site_, r),
            value, 4);
        return;
    }
    warp_->setReg(lane_, r, value);
}

bool
SASSIRegisterParams::GetPredValue(int pred) const
{
    return (static_cast<uint32_t>(read32(frame::PRSpill)) >> pred) & 1u;
}

void
SASSIRegisterParams::SetPredValue(int pred, bool value) const
{
    uint32_t bits = static_cast<uint32_t>(read32(frame::PRSpill));
    if (value)
        bits |= 1u << pred;
    else
        bits &= ~(1u << pred);
    write32(frame::PRSpill, static_cast<int32_t>(bits));
}

bool
SASSIRegisterParams::GetCCValue() const
{
    return (static_cast<uint32_t>(read32(frame::CCSpill)) & 0x80u) != 0;
}

void
SASSIRegisterParams::SetCCValue(bool value) const
{
    write32(frame::CCSpill, value ? 0x80 : 0x00);
}

} // namespace sassi::core
