/**
 * @file
 * The SASSI pass: rewrites each kernel, splicing an ABI-compliant
 * handler call before/after selected instructions (paper §3.1-3.2,
 * Figure 2). For every site the pass:
 *
 *   1. allocates a stack frame (IADD R1, R1, -0xc0),
 *   2. spills exactly the live caller-saved GPRs (liveness-driven)
 *      into the frame's GPRSpill slots, and the predicate file and
 *      carry flag via P2R,
 *   3. materializes SASSIBeforeParams (id, instrWillExecute via
 *      guarded IADDs, fnAddr, insOffset, insEncoding) and the
 *      requested aux blocks (memory address recomputed with
 *      IADD.CC/IADD.X, branch direction, register-write facts) with
 *      plain STL stores,
 *   4. passes generic pointers to the frame in R4:R5 and R6:R7 per
 *      the compute ABI and JCALs the handler trampoline,
 *   5. restores predicates/CC via R2P and fills the spilled GPRs.
 *
 * All injected instructions are marked synthetic (never themselves
 * instrumented; excluded from the paper's IsSpillOrFill filters as
 * appropriate) and every original branch/SSY/call target is
 * remapped to the start of its instruction's injected prologue.
 */

#include <set>

#include "core/runtime.h"
#include "sass/encoding.h"
#include "sassir/cfg.h"
#include "sassir/liveness.h"
#include "simt/decode.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace sassi::core {

using namespace sass;

namespace {

/** Scratch registers the injected sequence uses (all caller-saved). */
constexpr RegId ScratchA = 4; //!< Field stores; later the bp pointer.
constexpr RegId ScratchP = 3; //!< Predicate/CC spill shuttle.
constexpr RegId ScratchAux = 2; //!< Aux-pointer computation.

/** Append-only emitter for one rewritten kernel. */
class Splicer
{
  public:
    explicit Splicer(std::vector<Instruction> &out) : out_(out) {}

    Instruction &
    emit(Instruction ins)
    {
        ins.synthetic = true;
        out_.push_back(ins);
        return out_.back();
    }

    void
    mov32i(RegId d, int64_t imm)
    {
        Instruction i;
        i.op = Opcode::MOV32I;
        i.dst = d;
        i.imm = imm;
        i.bIsImm = true;
        emit(i);
    }

    void
    iaddi(RegId d, RegId a, int64_t imm, bool set_cc = false,
          bool use_cc = false)
    {
        Instruction i;
        i.op = Opcode::IADD32I;
        i.dst = d;
        i.srcA = a;
        i.imm = imm;
        i.bIsImm = true;
        i.setCC = set_cc;
        i.useCC = use_cc;
        emit(i);
    }

    void
    stl(int64_t off, RegId src, int width = 4, bool spill = false)
    {
        Instruction i;
        i.op = Opcode::STL;
        i.space = MemSpace::Local;
        i.srcA = abi::StackPtr;
        i.imm = off;
        i.srcB = src;
        i.width = static_cast<uint8_t>(width);
        emit(i).spillFill = spill;
    }

    void
    ldl(RegId dst, int64_t off, bool spill = false)
    {
        Instruction i;
        i.op = Opcode::LDL;
        i.space = MemSpace::Local;
        i.dst = dst;
        i.srcA = abi::StackPtr;
        i.imm = off;
        emit(i).spillFill = spill;
    }

    void
    p2r(RegId d, int64_t mask)
    {
        Instruction i;
        i.op = Opcode::P2R;
        i.dst = d;
        i.imm = mask;
        i.bIsImm = true;
        emit(i);
    }

    void
    r2p(RegId a, int64_t mask)
    {
        Instruction i;
        i.op = Opcode::R2P;
        i.srcA = a;
        i.imm = mask;
        i.bIsImm = true;
        emit(i);
    }

    void
    l2g(RegId d, RegId a)
    {
        Instruction i;
        i.op = Opcode::L2G;
        i.dst = d;
        i.srcA = a;
        emit(i);
    }

    /** Guarded immediate move via IADD (Figure 2 step 3). */
    void
    guardedFlag(RegId d, PredId guard, bool guard_neg)
    {
        Instruction t;
        t.op = Opcode::IADD32I;
        t.dst = d;
        t.srcA = RZ;
        t.imm = 1;
        t.bIsImm = true;
        t.guard = guard;
        t.guardNeg = guard_neg;
        emit(t);
        Instruction f = t;
        f.imm = 0;
        f.guardNeg = !guard_neg;
        emit(f);
    }

    void
    jcal(int32_t target)
    {
        Instruction i;
        i.op = Opcode::JCAL;
        i.target = target;
        emit(i);
    }

  private:
    std::vector<Instruction> &out_;
};

/** Pick a scratch register pair disjoint from {avoid, avoid+1}. */
RegId
pickScratchPair(RegId avoid)
{
    for (RegId cand : {RegId(6), RegId(8), RegId(10), RegId(12)}) {
        if (avoid == RZ)
            return cand;
        if (cand != avoid && cand != avoid + 1 && cand + 1 != avoid)
            return cand;
    }
    panic("no scratch pair available");
}

bool
wantBefore(const Instruction &ins, const InstrumentOptions &o)
{
    if (o.beforeAll)
        return true;
    if (o.beforeMem && ins.isMem())
        return true;
    if (o.beforeControl && ins.isControl())
        return true;
    if (o.beforeCondBranch && ins.op == Opcode::BRA && ins.guard != PT)
        return true;
    if (o.beforeCall && (opFlags(ins.op) & OF_Call))
        return true;
    if (o.beforeRegReads && !ins.srcRegs().empty())
        return true;
    if (o.beforeRegWrites && !ins.dstRegs().empty())
        return true;
    return false;
}

bool
wantAfter(const Instruction &ins, const InstrumentOptions &o)
{
    // Never after branches and jumps (paper §3.1).
    if (ins.isControl())
        return false;
    if (o.afterAll)
        return true;
    if (o.afterMem && ins.isMem())
        return true;
    if (o.afterRegWrites &&
        (!ins.dstRegs().empty() || !ins.dstPreds().empty() || ins.setCC))
        return true;
    return false;
}

/**
 * Emit the full injected call sequence for one site.
 *
 * @param valid_spills When elideRedundantSpills is on, the set of
 *        registers whose persistent slot already holds the current
 *        value (updated here); nullptr otherwise.
 */
void
emitSite(std::vector<Instruction> &out, SiteFlavor flavor,
         const ir::Kernel &kernel, int orig_pc, const Instruction &ins,
         const ir::LiveSet &live, const InstrumentOptions &opts,
         SassiRuntime &rt, uint32_t *valid_spills)
{
    Splicer s(out);

    SiteInfo site;
    site.flavor = flavor;
    site.kernelName = kernel.name;
    site.origPc = orig_pc;
    site.instr = ins;
    site.fnAddr = kernel.fnAddr;

    bool is_instr_site =
        flavor == SiteFlavor::Before || flavor == SiteFlavor::After;
    site.hasMemParams =
        is_instr_site && opts.memoryInfo && ins.isMem();
    site.hasBranchParams = is_instr_site && opts.branchInfo &&
                           ins.op == Opcode::BRA;
    site.hasRegParams = is_instr_site && opts.registerInfo;

    // Spill exactly the live caller-saved registers; for register
    // info also the (possibly dead) destination registers so
    // GetRegValue/SetRegValue work through the spill slots. The cap
    // is the handler's -maxrregcount; the naive mode (no liveness,
    // as a binary rewriter would be forced into, §10.1) spills the
    // whole clobber window.
    int cap = std::min(opts.handlerRegCap,
                       std::min(kernel.numRegs, 32));
    uint32_t spill = 0;
    for (int r = 0; r < cap; ++r) {
        if (r == abi::StackPtr)
            continue;
        if (opts.naiveSpillAll || live.gpr.test(static_cast<size_t>(r)))
            spill |= 1u << r;
    }
    if (site.hasRegParams) {
        for (RegId r : ins.dstRegs()) {
            if (r < cap && r != abi::StackPtr)
                spill |= 1u << r;
        }
    }
    site.spillMask = spill;
    site.persistentSpills = valid_spills != nullptr;

    int32_t key = rt.addSite(site);

    // 1. Frame allocation.
    s.iaddi(abi::StackPtr, abi::StackPtr, -frame::FrameBytes);

    // 2. GPR spills. In persistent mode, registers whose slot is
    //    still current are not re-spilled (the §9.1 optimization).
    for (int r = 0; r < 32; ++r) {
        if (!(spill & (1u << r)))
            continue;
        if (valid_spills) {
            if (!(*valid_spills & (1u << r))) {
                Instruction st;
                st.op = Opcode::STL;
                st.space = MemSpace::Local;
                st.srcA = RZ;
                st.imm = frame::PersistBase + 4 * r;
                st.srcB = static_cast<RegId>(r);
                s.emit(st).spillFill = true;
            }
        } else {
            s.stl(frame::gprSpillSlot(r), static_cast<RegId>(r), 4,
                  true);
        }
    }
    if (valid_spills)
        *valid_spills |= spill;

    // 3. Memory-address recomputation must precede any scratch
    //    clobbers because it reads the original address registers.
    if (site.hasMemParams) {
        RegId sc = pickScratchPair(ins.srcA);
        if (ins.op == Opcode::LDC) {
            s.iaddi(sc, ins.srcA, ins.imm);
            s.mov32i(static_cast<RegId>(sc + 1), 0);
        } else if (ins.addrIsPair()) {
            s.iaddi(sc, ins.srcA, static_cast<int32_t>(ins.imm),
                    /*set_cc=*/true);
            s.iaddi(static_cast<RegId>(sc + 1),
                    static_cast<RegId>(ins.srcA == RZ ? RZ : ins.srcA + 1),
                    ins.imm < 0 ? -1 : 0, false, /*use_cc=*/true);
        } else {
            s.iaddi(sc, ins.srcA, static_cast<int32_t>(ins.imm));
            s.mov32i(static_cast<RegId>(sc + 1), 0);
        }
        s.stl(frame::MemAddress, sc, 8);

        uint32_t props = 0;
        uint32_t flags = opFlags(ins.op);
        if (flags & OF_MemRead)
            props |= frame::PropLoad;
        if (flags & OF_MemWrite)
            props |= frame::PropStore;
        if (flags & OF_Atomic)
            props |= frame::PropAtomic;
        s.mov32i(ScratchA, props);
        s.stl(frame::MemProperties, ScratchA);
        s.mov32i(ScratchA, ins.width);
        s.stl(frame::MemWidth, ScratchA);
        s.mov32i(ScratchA, static_cast<int32_t>(ins.space));
        s.stl(frame::MemDomain, ScratchA);
    }

    // 4. Predicate and carry spills through R3.
    s.p2r(ScratchP, 0x7f);
    s.stl(frame::PRSpill, ScratchP, 4, true);
    s.p2r(ScratchP, 0x80);
    s.stl(frame::CCSpill, ScratchP, 4, true);

    // 5. SASSIBeforeParams fields.
    s.mov32i(ScratchA, key);
    s.stl(frame::Id, ScratchA);
    if (is_instr_site && ins.guard != PT) {
        s.guardedFlag(ScratchA, ins.guard, ins.guardNeg);
    } else {
        s.mov32i(ScratchA, 1);
    }
    s.stl(frame::InstrWillExecute, ScratchA);
    s.mov32i(ScratchA, kernel.fnAddr);
    s.stl(frame::FnAddr, ScratchA);
    s.mov32i(ScratchA, orig_pc);
    s.stl(frame::InsOffset, ScratchA);
    s.mov32i(ScratchA, static_cast<int64_t>(encodeInstr(ins)));
    s.stl(frame::InsEncoding, ScratchA);
    s.mov32i(ScratchA, spill);
    s.stl(frame::GPRSpillMask, ScratchA);

    // 6. Branch params.
    if (site.hasBranchParams) {
        if (ins.guard != PT) {
            s.guardedFlag(ScratchA, ins.guard, ins.guardNeg);
        } else {
            s.mov32i(ScratchA, 1);
        }
        s.stl(frame::BrDirection, ScratchA);
        s.mov32i(ScratchA, ins.target);
        s.stl(frame::BrTarget, ScratchA);
        s.mov32i(ScratchA, orig_pc + 1);
        s.stl(frame::BrFallthrough, ScratchA);
        s.mov32i(ScratchA, ins.guard != PT ? 1 : 0);
        s.stl(frame::BrIsConditional, ScratchA);
    }

    // 7. Register params.
    if (site.hasRegParams) {
        auto dsts = ins.dstRegs();
        s.mov32i(ScratchA, static_cast<int64_t>(dsts.size()));
        s.stl(frame::RegNumDsts, ScratchA);
        for (size_t d = 0; d < dsts.size() && d < 4; ++d) {
            s.mov32i(ScratchA, dsts[d]);
            s.stl(frame::RegIds + 4 * static_cast<int64_t>(d), ScratchA);
        }
        uint32_t pred_mask = 0;
        for (PredId p : ins.dstPreds())
            pred_mask |= 1u << p;
        s.mov32i(ScratchA, pred_mask);
        s.stl(frame::RegPredMask, ScratchA);
        s.mov32i(ScratchA, ins.setCC ? 1 : 0);
        s.stl(frame::RegWritesCC, ScratchA);
    }

    // 8. ABI pointer arguments and the call.
    s.l2g(abi::Arg0Lo, abi::StackPtr);
    s.iaddi(ScratchAux, abi::StackPtr, frame::Aux);
    s.l2g(abi::Arg1Lo, ScratchAux);
    s.jcal(simt::HandlerBase + key);

    // 9. Restores: predicates/CC first (through R3), then GPR fills,
    //    then the frame release.
    s.ldl(ScratchP, frame::PRSpill, true);
    s.r2p(ScratchP, 0x7f);
    s.ldl(ScratchP, frame::CCSpill, true);
    s.r2p(ScratchP, 0x80);
    for (int r = 0; r < 32; ++r) {
        if (!(spill & (1u << r)))
            continue;
        if (valid_spills) {
            Instruction ld;
            ld.op = Opcode::LDL;
            ld.space = MemSpace::Local;
            ld.dst = static_cast<RegId>(r);
            ld.srcA = RZ;
            ld.imm = frame::PersistBase + 4 * r;
            s.emit(ld).spillFill = true;
        } else {
            s.ldl(static_cast<RegId>(r), frame::gprSpillSlot(r),
                  true);
        }
    }
    s.iaddi(abi::StackPtr, abi::StackPtr, frame::FrameBytes);
}

void
instrumentKernel(ir::Kernel &kernel, const InstrumentOptions &opts,
                 SassiRuntime &rt)
{
    ir::Cfg cfg = ir::buildCfg(kernel);
    ir::Liveness live(kernel, cfg);

    std::set<int> headers;
    for (const auto &bb : cfg.blocks)
        headers.insert(bb.start);

    int n = static_cast<int>(kernel.code.size());
    std::vector<Instruction> out;
    out.reserve(kernel.code.size() * 4);
    std::vector<int> remap(static_cast<size_t>(n) + 1, 0);

    // §9.1 optimization state: which registers' persistent spill
    // slots are current. Conservatively reset at block leaders.
    uint32_t valid_spills = 0;
    uint32_t *valid =
        opts.elideRedundantSpills ? &valid_spills : nullptr;

    // §9.5 graphics shaders: inject the stack initialization SASSI
    // must perform itself (the immediate is patched below, once the
    // final localBytes is known).
    size_t stack_init_idx = SIZE_MAX;
    if (opts.manageStack) {
        Instruction init;
        init.op = Opcode::MOV32I;
        init.dst = abi::StackPtr;
        init.bIsImm = true;
        init.synthetic = true;
        stack_init_idx = out.size();
        out.push_back(init);
    }

    for (int pc = 0; pc < n; ++pc) {
        const Instruction ins = kernel.code[static_cast<size_t>(pc)];
        remap[static_cast<size_t>(pc)] = static_cast<int>(out.size());

        if (headers.count(pc))
            valid_spills = 0;

        if (ins.synthetic && opts.skipSynthetic) {
            out.push_back(ins);
            continue;
        }

        if (opts.kernelEntry && pc == 0) {
            emitSite(out, SiteFlavor::KernelEntry, kernel, pc, ins,
                     live.liveIn(pc), opts, rt, valid);
        }
        if (opts.blockHeaders && headers.count(pc)) {
            emitSite(out, SiteFlavor::BlockHeader, kernel, pc, ins,
                     live.liveIn(pc), opts, rt, valid);
        }
        if (opts.kernelExit && ins.op == Opcode::EXIT) {
            emitSite(out, SiteFlavor::KernelExit, kernel, pc, ins,
                     live.liveIn(pc), opts, rt, valid);
        }
        if (wantBefore(ins, opts)) {
            emitSite(out, SiteFlavor::Before, kernel, pc, ins,
                     live.liveIn(pc), opts, rt, valid);
        }

        out.push_back(ins);

        // The original instruction redefines its destinations;
        // calls may redefine anything.
        for (RegId r : ins.dstRegs()) {
            if (r < 32)
                valid_spills &= ~(1u << r);
        }
        if (opFlags(ins.op) & OF_Call)
            valid_spills = 0;

        if (wantAfter(ins, opts)) {
            emitSite(out, SiteFlavor::After, kernel, pc, ins,
                     live.liveOut(pc), opts, rt, valid);
        }
    }
    remap[static_cast<size_t>(n)] = static_cast<int>(out.size());

    // Retarget original control flow into the new index space.
    for (auto &ins : out) {
        if (ins.synthetic)
            continue;
        bool has_target = ins.op == Opcode::BRA ||
                          ins.op == Opcode::SSY ||
                          (ins.op == Opcode::JCAL &&
                           ins.target < simt::HandlerBase);
        if (has_target && ins.target >= 0 && ins.target <= n)
            ins.target = remap[static_cast<size_t>(ins.target)];
    }

    kernel.code = std::move(out);
    // Headroom for one parameter frame below the user stack (plus
    // the persistent spill region when the optimization is on).
    kernel.localBytes += frame::FrameBytes + 0x40;
    if (opts.elideRedundantSpills)
        kernel.localBytes += frame::PersistBytes;
    if (stack_init_idx != SIZE_MAX)
        kernel.code[stack_init_idx].imm = kernel.localBytes;
    kernel.numRegs = std::max(kernel.numRegs, 18);
}

} // namespace

void
instrumentModule(ir::Module &module, const InstrumentOptions &opts,
                 SassiRuntime &runtime)
{
    for (auto &kernel : module.kernels) {
        instrumentKernel(kernel, opts, runtime);
        // The rewrite changed the kernel's content fingerprint, so
        // future launches recompile; dropping the stale micro-
        // program here just bounds cache growth.
        simt::UopCache::global().invalidate(kernel.name);
    }
}

} // namespace sassi::core

namespace sassi::core {

std::string
InstrumentOptions::describe() const
{
    std::string s = "-sassi:";
    auto flag = [&](bool v, const char *name) {
        if (v) {
            s += name;
            s += ' ';
        }
    };
    flag(beforeAll, "before=all");
    flag(beforeMem, "before=mem");
    flag(beforeControl, "before=control");
    flag(beforeCondBranch, "before=cond-branch");
    flag(beforeCall, "before=call");
    flag(beforeRegReads, "before=reg-reads");
    flag(beforeRegWrites, "before=reg-writes");
    flag(afterAll, "after=all");
    flag(afterMem, "after=mem");
    flag(afterRegWrites, "after=reg-writes");
    flag(kernelEntry, "where=kernel-entry");
    flag(kernelExit, "where=kernel-exit");
    flag(blockHeaders, "where=block-headers");
    flag(memoryInfo, "what=mem-info");
    flag(branchInfo, "what=branch-info");
    flag(registerInfo, "what=reg-info");
    return s;
}

} // namespace sassi::core
