/**
 * @file
 * Instrumentation options: the "where" and the "what".
 *
 * The paper (§3.1-3.2) drives these through ptxas command-line
 * arguments: where to insert instrumentation (before all
 * instructions, or instruction classes: control transfers, memory
 * operations, calls, register reads/writes; after all instructions
 * other than branches and jumps; basic block headers; kernel entries
 * and exits) and what information to extract and pass to the
 * handler (memory addresses, conditional branch information,
 * register information).
 */

#ifndef SASSI_CORE_OPTIONS_H
#define SASSI_CORE_OPTIONS_H

#include <cstdint>
#include <string>

namespace sassi::core {

/** Site-selection and parameter-extraction options for one pass. */
struct InstrumentOptions
{
    /// @name Where: before-instruction site classes
    /// @{
    bool beforeAll = false;         //!< Every instruction.
    bool beforeMem = false;         //!< Memory operations.
    bool beforeControl = false;     //!< Control-transfer instructions.
    bool beforeCondBranch = false;  //!< Guarded branches only.
    bool beforeCall = false;        //!< Call instructions.
    bool beforeRegReads = false;    //!< Instructions reading GPRs.
    bool beforeRegWrites = false;   //!< Instructions writing GPRs.
    /// @}

    /// @name Where: after-instruction site classes
    /// (Branches and jumps are never given after-sites, §3.1.)
    /// @{
    bool afterAll = false;
    bool afterMem = false;
    bool afterRegWrites = false;
    /// @}

    /// @name Where: structural sites
    /// @{
    bool kernelEntry = false;
    bool kernelExit = false;
    bool blockHeaders = false;
    /// @}

    /// @name What: parameter blocks to materialize
    /// @{
    bool memoryInfo = false;   //!< SASSIMemoryParams at memory ops.
    bool branchInfo = false;   //!< SASSICondBranchParams at branches.
    bool registerInfo = false; //!< SASSIRegisterParams.
    /// @}

    /**
     * Modeled cost of the handler body in warp instructions per
     * call. The injected spill/param/call sequence is real SASS and
     * costs its true instruction count; the handler body is host C++
     * standing in for CUDA compiled with -maxrregcount=16, so its
     * cost is charged explicitly (see DESIGN.md).
     */
    uint32_t handlerCostInstrs = 40;

    /**
     * Do not instrument SASSI-synthetic instructions. Always true in
     * the real tool; exposed for tests.
     */
    bool skipSynthetic = true;

    /**
     * Registers the handler may clobber (the -maxrregcount the
     * handler was compiled with). 16 is the CUDA ABI minimum the
     * paper imposes (§3.2); the ablation bench sweeps this to show
     * why the cap matters.
     */
    int handlerRegCap = 16;

    /**
     * Ablation: spill every caller-saved register instead of only
     * the live ones — what a binary instrumentation tool without
     * the compiler's liveness information must do (§10.1).
     */
    bool naiveSpillAll = false;

    /**
     * The optimization the paper sketches as future work (§9.1):
     * "tracking which live variables are statically guaranteed to
     * have been previously spilled but not yet overwritten, which
     * will allow us to forgo re-spilling registers." Spills go to a
     * persistent per-thread region (local bytes [0, 0x80)) instead
     * of the transient frame, and within a basic block a register
     * already saved and not redefined since is not re-spilled.
     * Fills still always run (the handler clobbers the window).
     */
    bool elideRedundantSpills = false;

    /**
     * Graphics-shader support (paper §9.5): shaders maintain no
     * stack, so SASSI allocates and initializes one at kernel entry
     * before any injected ABI call can run. "Aside from stack
     * management, the mechanics of setting up a CUDA ABI-compliant
     * call from a graphics shader remain unchanged."
     */
    bool manageStack = false;

    /** @return a ptxas-style flag string describing the options. */
    std::string describe() const;
};

} // namespace sassi::core

#endif // SASSI_CORE_OPTIONS_H
