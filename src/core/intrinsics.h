/**
 * @file
 * CUDA-flavored device intrinsics available inside handlers.
 *
 * The paper's handlers are "straight CUDA code" (§3.2) and lean on
 * warp-wide primitives: __ballot, __popc, __ffs, __shfl, __all, and
 * atomics on device memory (Figures 3, 4, 6, 9). These functions
 * provide the same surface for C++ handlers. The warp-wide ones
 * synchronize all active lanes through the fiber scheduler — every
 * active lane must reach the intrinsic (the usual CUDA convergence
 * requirement; §9.3 notes the analogous restriction on
 * syncthreads).
 *
 * Atomics and dev* accessors operate on simulated device global
 * memory addressed by the 64-bit addresses Device::malloc returns.
 */

#ifndef SASSI_CORE_INTRINSICS_H
#define SASSI_CORE_INTRINSICS_H

#include <cstdint>

#include "util/bitops.h"

namespace sassi::cuda {

/** Warp width. */
constexpr int warpSize = 32;

/// @name Warp-synchronous primitives (must be called convergently)
/// @{

/**
 * Evaluate pred on every active lane; @return a mask whose Nth bit
 * is set iff lane N's pred was non-zero.
 */
uint32_t ballot(int pred);

/** @return non-zero when pred is non-zero on every active lane. */
int all(int pred);

/** @return non-zero when pred is non-zero on any active lane. */
int any(int pred);

/** @return src_lane's value of var (own value if src is inactive). */
uint32_t shfl(uint32_t var, int src_lane);

/** Float overload of shfl. */
float shflF(float var, int src_lane);

/// @}

/// @name Pure bit intrinsics
/// @{

/** Population count. */
inline int
popc(uint32_t v)
{
    return sassi::popc(v);
}

/** Find-first-set (1-based; 0 when empty), CUDA __ffs. */
inline int
ffs(uint32_t v)
{
    return sassi::ffs(v);
}

/// @}

/// @name Atomics on device global memory
/// @{

uint32_t atomicAdd32(uint64_t addr, uint32_t v);
uint64_t atomicAdd64(uint64_t addr, uint64_t v);
uint32_t atomicAnd32(uint64_t addr, uint32_t v);
uint64_t atomicAnd64(uint64_t addr, uint64_t v);
uint32_t atomicOr32(uint64_t addr, uint32_t v);
uint64_t atomicOr64(uint64_t addr, uint64_t v);
uint32_t atomicMax32(uint64_t addr, uint32_t v);
uint32_t atomicCAS32(uint64_t addr, uint32_t compare, uint32_t v);
uint64_t atomicCAS64(uint64_t addr, uint64_t compare, uint64_t v);
uint32_t atomicExch32(uint64_t addr, uint32_t v);

/**
 * Blind atomicAdd64 with deferred visibility: the delta lands in
 * the calling worker's CounterShard and reaches device memory when
 * the launch's shards merge, so hot handler counters stop
 * ping-ponging one cache line between workers. Final counter values
 * are bit-identical to atomicAdd64 (addition commutes); the only
 * observable difference is that a devLoad of the counter *during*
 * the launch won't see the pending deltas. Use for counters that
 * are only read back on the host after the launch (the paper's
 * Figure 3/4/6 handlers); anything that needs the old value or
 * in-launch visibility must stay on atomicAdd64/atomicCAS.
 */
void countAdd64(uint64_t addr, uint64_t v);

/// @}

/// @name Plain device-memory access from handlers
/// @{

uint32_t devLoad32(uint64_t addr);
uint64_t devLoad64(uint64_t addr);
void devStore32(uint64_t addr, uint32_t v);
void devStore64(uint64_t addr, uint64_t v);

/// @}

/** CUDA __isGlobal: whether a generic address is in global memory. */
bool isGlobal(int64_t addr);

} // namespace sassi::cuda

#endif // SASSI_CORE_INTRINSICS_H
