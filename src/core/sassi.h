/**
 * @file
 * Umbrella header: the public SASSI API.
 *
 * Typical use (mirrors the paper's flow, Figure 1):
 *
 *   sassi::simt::Device dev;
 *   dev.loadModule(buildMyKernels());          // "ptxas" output
 *   sassi::core::SassiRuntime sassi(dev);      // install the tool
 *   sassi::core::InstrumentOptions opts;
 *   opts.beforeCondBranch = true;              // the "where"
 *   opts.branchInfo = true;                    // the "what"
 *   sassi.instrument(opts);                    // the final pass
 *   sassi.setBeforeHandler(myHandler);         // "nvlink" the handler
 *   dev.launch("kernel", grid, block, args);   // runs instrumented
 */

#ifndef SASSI_CORE_SASSI_H
#define SASSI_CORE_SASSI_H

#include "core/intrinsics.h"
#include "core/options.h"
#include "core/params.h"
#include "core/runtime.h"
#include "core/site.h"

#endif // SASSI_CORE_SASSI_H
