#include "core/intrinsics.h"

#include <cstring>

#include "core/runtime.h"
#include "util/logging.h"

namespace sassi::cuda {

namespace {

core::DispatchState *
dispatch()
{
    core::DispatchState *ds = core::currentDispatch();
    panic_if(!ds, "CUDA intrinsic called outside a SASSI handler");
    return ds;
}

/** Bounds-checked host pointer to device global memory. */
uint8_t *
devPtr(uint64_t addr, size_t n)
{
    uint8_t *p = dispatch()->exec->device().globalPtr(addr, n);
    fatal_if(!p, "handler accessed invalid device address 0x%llx",
             static_cast<unsigned long long>(addr));
    return p;
}

template <typename T>
T
load(uint64_t addr)
{
    T v;
    std::memcpy(&v, devPtr(addr, sizeof(T)), sizeof(T));
    return v;
}

template <typename T>
void
store(uint64_t addr, T v)
{
    std::memcpy(devPtr(addr, sizeof(T)), &v, sizeof(T));
}

/**
 * Aligned pointer to a device word for atomic access, or nullptr
 * when the address is misaligned. Parallel CTA workers race on
 * device counters exactly like CTAs race on a real GPU, so every
 * handler atomic must be a genuine atomic RMW; a misaligned word
 * has no atomic access path on any target and falls back to the
 * plain load/store pair.
 */
template <typename T>
T *
devWord(uint64_t addr)
{
    uint8_t *p = devPtr(addr, sizeof(T));
    if ((reinterpret_cast<uintptr_t>(p) & (sizeof(T) - 1)) != 0)
        return nullptr;
    return reinterpret_cast<T *>(p);
}

/** Run a warp-wide rendezvous publishing value; returns own result. */
uint64_t
rendezvous(uint64_t value, const FiberGroup::Reducer &reducer)
{
    core::DispatchState *ds = dispatch();
    panic_if(!ds->fibers || !ds->fibers->inFiber(),
             "warp intrinsic outside fiber execution (a handler "
             "marked reentrantSafe must not rendezvous; use its "
             "warpHandler body instead)");
    return ds->fibers->barrier(value, reducer);
}

} // namespace

uint32_t
ballot(int pred)
{
    uint64_t r = rendezvous(pred ? 1 : 0,
        [](const std::vector<uint64_t> &vals, const std::vector<int> &lanes,
           std::vector<uint64_t> &results) {
            uint32_t mask = 0;
            for (size_t i = 0; i < vals.size(); ++i) {
                if (vals[i])
                    mask |= 1u << lanes[i];
            }
            for (auto &res : results)
                res = mask;
        });
    return static_cast<uint32_t>(r);
}

int
all(int pred)
{
    uint64_t r = rendezvous(pred ? 1 : 0,
        [](const std::vector<uint64_t> &vals, const std::vector<int> &,
           std::vector<uint64_t> &results) {
            uint64_t every = 1;
            for (uint64_t v : vals)
                every &= v;
            for (auto &res : results)
                res = every;
        });
    return static_cast<int>(r);
}

int
any(int pred)
{
    uint64_t r = rendezvous(pred ? 1 : 0,
        [](const std::vector<uint64_t> &vals, const std::vector<int> &,
           std::vector<uint64_t> &results) {
            uint64_t some = 0;
            for (uint64_t v : vals)
                some |= v;
            for (auto &res : results)
                res = some;
        });
    return static_cast<int>(r);
}

uint32_t
shfl(uint32_t var, int src_lane)
{
    // Publish (value, requested source lane); every lane receives
    // the value of its requested lane, or its own when the source
    // did not participate.
    uint64_t packed = var |
        (static_cast<uint64_t>(static_cast<uint32_t>(src_lane)) << 32);
    uint64_t r = rendezvous(packed,
        [](const std::vector<uint64_t> &vals, const std::vector<int> &lanes,
           std::vector<uint64_t> &results) {
            for (size_t i = 0; i < vals.size(); ++i) {
                int want = static_cast<int32_t>(vals[i] >> 32);
                uint32_t own = static_cast<uint32_t>(vals[i]);
                uint32_t out = own;
                for (size_t j = 0; j < lanes.size(); ++j) {
                    if (lanes[j] == want) {
                        out = static_cast<uint32_t>(vals[j]);
                        break;
                    }
                }
                results[i] = out;
            }
        });
    return static_cast<uint32_t>(r);
}

float
shflF(float var, int src_lane)
{
    uint32_t bits;
    std::memcpy(&bits, &var, 4);
    uint32_t out = shfl(bits, src_lane);
    float f;
    std::memcpy(&f, &out, 4);
    return f;
}

uint32_t
atomicAdd32(uint64_t addr, uint32_t v)
{
    if (auto *w = devWord<uint32_t>(addr))
        return __atomic_fetch_add(w, v, __ATOMIC_RELAXED);
    uint32_t old = load<uint32_t>(addr);
    store<uint32_t>(addr, old + v);
    return old;
}

uint64_t
atomicAdd64(uint64_t addr, uint64_t v)
{
    if (auto *w = devWord<uint64_t>(addr))
        return __atomic_fetch_add(w, v, __ATOMIC_RELAXED);
    uint64_t old = load<uint64_t>(addr);
    store<uint64_t>(addr, old + v);
    return old;
}

void
countAdd64(uint64_t addr, uint64_t v)
{
    // Validate eagerly so a bad counter address faults at the
    // handler site, exactly where atomicAdd64 would have; only the
    // visibility of the add is deferred.
    core::DispatchState *ds = dispatch();
    uint8_t *p = ds->exec->device().globalPtr(addr, 8);
    fatal_if(!p, "handler accessed invalid device address 0x%llx",
             static_cast<unsigned long long>(addr));
    ds->exec->counterShard().add(addr, v);
}

uint32_t
atomicAnd32(uint64_t addr, uint32_t v)
{
    if (auto *w = devWord<uint32_t>(addr))
        return __atomic_fetch_and(w, v, __ATOMIC_RELAXED);
    uint32_t old = load<uint32_t>(addr);
    store<uint32_t>(addr, old & v);
    return old;
}

uint64_t
atomicAnd64(uint64_t addr, uint64_t v)
{
    if (auto *w = devWord<uint64_t>(addr))
        return __atomic_fetch_and(w, v, __ATOMIC_RELAXED);
    uint64_t old = load<uint64_t>(addr);
    store<uint64_t>(addr, old & v);
    return old;
}

uint32_t
atomicOr32(uint64_t addr, uint32_t v)
{
    if (auto *w = devWord<uint32_t>(addr))
        return __atomic_fetch_or(w, v, __ATOMIC_RELAXED);
    uint32_t old = load<uint32_t>(addr);
    store<uint32_t>(addr, old | v);
    return old;
}

uint64_t
atomicOr64(uint64_t addr, uint64_t v)
{
    if (auto *w = devWord<uint64_t>(addr))
        return __atomic_fetch_or(w, v, __ATOMIC_RELAXED);
    uint64_t old = load<uint64_t>(addr);
    store<uint64_t>(addr, old | v);
    return old;
}

uint32_t
atomicMax32(uint64_t addr, uint32_t v)
{
    if (auto *w = devWord<uint32_t>(addr)) {
        uint32_t old = __atomic_load_n(w, __ATOMIC_RELAXED);
        while (v > old &&
               !__atomic_compare_exchange_n(w, &old, v, false,
                                            __ATOMIC_RELAXED,
                                            __ATOMIC_RELAXED)) {
        }
        return old;
    }
    uint32_t old = load<uint32_t>(addr);
    store<uint32_t>(addr, std::max(old, v));
    return old;
}

uint32_t
atomicCAS32(uint64_t addr, uint32_t compare, uint32_t v)
{
    if (auto *w = devWord<uint32_t>(addr)) {
        uint32_t expected = compare;
        __atomic_compare_exchange_n(w, &expected, v, false,
                                    __ATOMIC_RELAXED, __ATOMIC_RELAXED);
        return expected;
    }
    uint32_t old = load<uint32_t>(addr);
    if (old == compare)
        store<uint32_t>(addr, v);
    return old;
}

uint64_t
atomicCAS64(uint64_t addr, uint64_t compare, uint64_t v)
{
    if (auto *w = devWord<uint64_t>(addr)) {
        uint64_t expected = compare;
        __atomic_compare_exchange_n(w, &expected, v, false,
                                    __ATOMIC_RELAXED, __ATOMIC_RELAXED);
        return expected;
    }
    uint64_t old = load<uint64_t>(addr);
    if (old == compare)
        store<uint64_t>(addr, v);
    return old;
}

uint32_t
atomicExch32(uint64_t addr, uint32_t v)
{
    if (auto *w = devWord<uint32_t>(addr))
        return __atomic_exchange_n(w, v, __ATOMIC_RELAXED);
    uint32_t old = load<uint32_t>(addr);
    store<uint32_t>(addr, v);
    return old;
}

uint32_t
devLoad32(uint64_t addr)
{
    if (auto *w = devWord<uint32_t>(addr))
        return __atomic_load_n(w, __ATOMIC_RELAXED);
    return load<uint32_t>(addr);
}

uint64_t
devLoad64(uint64_t addr)
{
    if (auto *w = devWord<uint64_t>(addr))
        return __atomic_load_n(w, __ATOMIC_RELAXED);
    return load<uint64_t>(addr);
}

void
devStore32(uint64_t addr, uint32_t v)
{
    if (auto *w = devWord<uint32_t>(addr)) {
        __atomic_store_n(w, v, __ATOMIC_RELAXED);
        return;
    }
    store<uint32_t>(addr, v);
}

void
devStore64(uint64_t addr, uint64_t v)
{
    if (auto *w = devWord<uint64_t>(addr)) {
        __atomic_store_n(w, v, __ATOMIC_RELAXED);
        return;
    }
    store<uint64_t>(addr, v);
}

bool
isGlobal(int64_t addr)
{
    return dispatch()->exec->device().isGlobal(
        static_cast<uint64_t>(addr));
}

} // namespace sassi::cuda
