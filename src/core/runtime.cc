#include "core/runtime.h"

#include "util/bitops.h"
#include "util/logging.h"
#include "util/trace.h"

namespace sassi::core {

namespace {
thread_local DispatchState *tl_dispatch = nullptr;

const char *
flavorName(SiteFlavor f)
{
    switch (f) {
      case SiteFlavor::Before: return "before";
      case SiteFlavor::After: return "after";
      case SiteFlavor::KernelEntry: return "kernel_entry";
      case SiteFlavor::KernelExit: return "kernel_exit";
      case SiteFlavor::BlockHeader: return "block_header";
    }
    return "unknown";
}
} // namespace

DispatchState *
currentDispatch()
{
    return tl_dispatch;
}

SassiRuntime::SassiRuntime(simt::Device &dev)
    : dev_(dev)
{
    panic_if(dev_.dispatcher() != nullptr,
             "device already has a SASSI runtime installed");
    dev_.setDispatcher(this);
}

SassiRuntime::~SassiRuntime()
{
    if (dev_.dispatcher() == this)
        dev_.setDispatcher(nullptr);
}

int32_t
SassiRuntime::addSite(SiteInfo site)
{
    sites_.push_back(std::move(site));
    return static_cast<int32_t>(sites_.size()) - 1;
}

void
SassiRuntime::instrument(const InstrumentOptions &opts)
{
    panic_if(instrumented_, "module instrumented twice through the same "
             "runtime");
    instrumented_ = true;
    opts_ = opts;
    instrumentModule(dev_.module(), opts, *this);

    static_metrics_.counter("core/sites/total") = sites_.size();
    for (const SiteInfo &s : sites_) {
        static_metrics_.inc(std::string("core/sites/") +
                            flavorName(s.flavor));
        uint64_t slots = static_cast<uint64_t>(popc(s.spillMask));
        static_metrics_.counter("core/static/spill_slots") += slots;
        static_metrics_.counter("core/static/spill_bytes") +=
            slots * 4;
        if (s.persistentSpills)
            static_metrics_.inc("core/static/persistent_spill_sites");
    }
}

void
SassiRuntime::dispatch(simt::Executor &exec, simt::Warp &warp,
                       int32_t site_key)
{
    const SiteInfo &site = sites_.at(static_cast<size_t>(site_key));
    exec.chargeHandlerCost(opts_.handlerCostInstrs);

    // Dynamic per-site counts go into the worker's launch-registry
    // shard, so they merge deterministically like everything else.
    Metrics &m = exec.metrics();
    m.inc("core/dispatch/calls");
    m.inc(std::string("core/dispatch/flavor/") +
          flavorName(site.flavor));
    m.inc(detail::strFormat("core/site/%s@%d/calls",
                            site.kernelName.c_str(), site.origPc));
    m.histogram("core/dispatch/lanes")
        .observe(static_cast<uint64_t>(popc(warp.activeMask)));

    bool is_after = site.flavor == SiteFlavor::After;
    const Handler &handler = is_after ? after_ : before_;
    const HandlerTraits &traits =
        is_after ? after_traits_ : before_traits_;
    if (!handler)
        return;
    if (traits.warpFilter && !traits.warpFilter(exec, warp, site))
        return;

    // One fiber group per OS thread: parallel CTA workers dispatch
    // concurrently, and ucontext fiber state must never be shared
    // (or migrated) across threads.
    static thread_local FiberGroup fibers;

    DispatchState ds;
    ds.exec = &exec;
    ds.warp = &warp;
    ds.site = &site;
    ds.activeMask = warp.activeMask;
    ds.fibers = &fibers;
    ds.envs.resize(sass::WarpSize);

    std::vector<int> lanes;
    for (int lane = 0; lane < sass::WarpSize; ++lane) {
        if (!(warp.activeMask & (1u << lane)))
            continue;
        lanes.push_back(lane);

        // The injected ABI sequence passed the bp pointer in R4:R5
        // (second pointer, aux block, in R6:R7 — it is bp + 0x60, so
        // the frame base is all the views need).
        uint64_t frame =
            makeU64(warp.reg(lane, sass::abi::Arg0Lo),
                    warp.reg(lane, sass::abi::Arg0Lo + 1));

        HandlerEnv &env = ds.envs[static_cast<size_t>(lane)];
        env.bp = SASSIBeforeParams(&exec, &warp, lane, frame, &site);
        env.mp = SASSIMemoryParams(&exec, &warp, lane, frame, &site);
        env.brp = SASSICondBranchParams(&exec, &warp, lane, frame, &site);
        env.rp = SASSIRegisterParams(&exec, &warp, lane, frame, &site);
        env.site = &site;
        env.lane = lane;
        env.threadIdx = exec.threadIdx(warp, lane);
        env.blockIdx = exec.ctaId();
        env.blockDim = exec.blockDim();
        env.gridDim = exec.gridDim();
    }

    // Handler wall-clock goes to the timeline only — never into the
    // registry, which must stay thread-count-invariant.
    Trace &trace = Trace::global();
    const bool traced = trace.enabled();
    const uint64_t t0 = traced ? trace.nowNs() : 0;

    tl_dispatch = &ds;
    if (traits.warpSynchronous) {
        fibers.run(lanes, [&](int lane) {
            try {
                handler(ds.envs[static_cast<size_t>(lane)]);
            } catch (const simt::SimFault &f) {
                // Never unwind across the fiber boundary; rethrow
                // after the fiber group drains.
                if (!ds.faulted) {
                    ds.faulted = true;
                    ds.fault = f;
                }
            }
        });
    } else {
        // Fast path for handlers with no warp-wide intrinsics:
        // iterate the lanes directly.
        try {
            for (int lane : lanes)
                handler(ds.envs[static_cast<size_t>(lane)]);
        } catch (const simt::SimFault &f) {
            ds.faulted = true;
            ds.fault = f;
        }
    }
    tl_dispatch = nullptr;

    if (traced) {
        trace.complete(
            detail::strFormat("%s@%d %s", site.kernelName.c_str(),
                              site.origPc, flavorName(site.flavor)),
            "handler", exec.traceTid(), t0, trace.nowNs() - t0,
            {{"site", static_cast<uint64_t>(site_key)},
             {"lanes", static_cast<uint64_t>(lanes.size())}});
    }

    if (ds.faulted)
        throw ds.fault;
}

} // namespace sassi::core
