#include "core/runtime.h"

#include <array>
#include <memory>

#include "util/bitops.h"
#include "util/logging.h"
#include "util/trace.h"

namespace sassi::core {

namespace {
thread_local DispatchState *tl_dispatch = nullptr;

const char *
flavorName(SiteFlavor f)
{
    switch (f) {
      case SiteFlavor::Before: return "before";
      case SiteFlavor::After: return "after";
      case SiteFlavor::KernelEntry: return "kernel_entry";
      case SiteFlavor::KernelExit: return "kernel_exit";
      case SiteFlavor::BlockHeader: return "block_header";
    }
    return "unknown";
}

/**
 * Registry handles for the per-dispatch bookkeeping, cached in the
 * executor's dispatcher-scratch slot so the hot path bumps plain
 * uint64s instead of hashing key strings on every handler call.
 * The slot is worker-private and dies with the executor, so the
 * cached pointers cannot outlive the registry shard they index.
 */
struct SiteMetricsCache
{
    uint64_t *calls = nullptr;
    MetricHistogram *lanes = nullptr;
    uint64_t *flavor[8] = {};        //!< Indexed by SiteFlavor.
    std::vector<uint64_t *> site;    //!< Indexed by site key (lazy).
};

SiteMetricsCache &
metricsCache(simt::Executor &exec, size_t num_sites)
{
    std::shared_ptr<void> &slot = exec.dispatcherScratch();
    if (!slot) {
        auto cache = std::make_shared<SiteMetricsCache>();
        Metrics &m = exec.metrics();
        cache->calls = &m.counter("core/dispatch/calls");
        cache->lanes = &m.histogram("core/dispatch/lanes");
        cache->site.assign(num_sites, nullptr);
        slot = std::move(cache);
    }
    return *static_cast<SiteMetricsCache *>(slot.get());
}

/** Per-dispatch counter bumps, shared by both dispatch paths. */
void
noteDispatch(simt::Executor &exec, SiteMetricsCache &cache,
             const SiteInfo &site, int32_t site_key,
             uint32_t active_mask)
{
    ++*cache.calls;
    uint64_t *&fl = cache.flavor[static_cast<size_t>(site.flavor)];
    if (!fl)
        fl = &exec.metrics().counter(site.metricFlavor);
    ++*fl;
    uint64_t *&sc = cache.site[static_cast<size_t>(site_key)];
    if (!sc)
        sc = &exec.metrics().counter(site.metricCalls);
    ++*sc;
    cache.lanes->observe(static_cast<uint64_t>(popc(active_mask)));
}

/**
 * Per-worker environment arena for the inline dispatch path. The
 * expensive parts of a HandlerEnv — four param-view constructors and
 * four Dim3 copies per lane — are invariant across every dispatch of
 * one (site, executor, warp, CTA); only the frame location moves.
 * So the arena keeps 32 fully-bound environments keyed by that
 * tuple: a key hit refreshes just the frame pointers (two stores per
 * view), a miss rebinds lazily, lane by lane, as lanes first appear
 * in an active mask.
 */
struct EnvArena
{
    std::array<HandlerEnv, sass::WarpSize> envs;
    const SiteInfo *site = nullptr;
    simt::Executor *exec = nullptr;
    simt::Warp *warp = nullptr;
    uint64_t seq = 0; //!< exec->launchSeq(): no cross-launch alias.
    uint64_t cta = ~0ull;
    uint32_t boundMask = 0; //!< Lanes fully bound under this key.
    /**
     * Frame address each bound lane's views point at. Within one
     * arena key the host pointer is a pure function of the generic
     * address (same executor, warp, and local window), so a matching
     * address means the lane's views are already current and even
     * the two-store-per-view refresh can be skipped — the common
     * case for a site re-dispatched in a loop with a stable R1.
     */
    std::array<uint64_t, sass::WarpSize> frames;
};

/**
 * The per-worker arena pool: one EnvArena per (site key, warp rank),
 * allocated lazily as dispatches touch each combination. A single
 * arena would thrash — a kernel's sites dispatch round-robin across
 * the CTA's warps, so consecutive inline dispatches almost never
 * share a (site, warp) pair. With the pool, each site's per-warp
 * invariants survive the whole launch and a dispatch is a key check
 * plus frame-address compares.
 */
struct ArenaPool
{
    std::vector<std::vector<std::unique_ptr<EnvArena>>> bySite;

    EnvArena &
    at(size_t site_key, size_t rank)
    {
        if (bySite.size() <= site_key)
            bySite.resize(site_key + 1);
        auto &ranks = bySite[site_key];
        if (ranks.size() <= rank)
            ranks.resize(rank + 1);
        if (!ranks[rank])
            ranks[rank] = std::make_unique<EnvArena>();
        return *ranks[rank];
    }
};
} // namespace

DispatchState *
currentDispatch()
{
    return tl_dispatch;
}

SassiRuntime::SassiRuntime(simt::Device &dev)
    : dev_(dev)
{
    panic_if(dev_.dispatcher() != nullptr,
             "device already has a SASSI runtime installed");
    dev_.setDispatcher(this);
}

SassiRuntime::~SassiRuntime()
{
    if (dev_.dispatcher() == this)
        dev_.setDispatcher(nullptr);
}

int32_t
SassiRuntime::addSite(SiteInfo site)
{
    site.metricCalls =
        detail::strFormat("core/site/%s@%d/calls",
                          site.kernelName.c_str(), site.origPc);
    site.metricFlavor =
        std::string("core/dispatch/flavor/") + flavorName(site.flavor);
    sites_.push_back(std::move(site));
    records_dirty_ = true; // sites_ may have reallocated.
    return static_cast<int32_t>(sites_.size()) - 1;
}

void
SassiRuntime::prepareLaunch()
{
    if (!records_dirty_ && records_.size() == sites_.size())
        return;
    records_.clear();
    records_.reserve(sites_.size());
    for (const SiteInfo &site : sites_) {
        SiteDispatchRecord r;
        r.site = &site;
        bool is_after = site.flavor == SiteFlavor::After;
        const Handler &handler = is_after ? after_ : before_;
        const HandlerTraits &traits =
            is_after ? after_traits_ : before_traits_;
        r.handler = handler ? &handler : nullptr;
        r.traits = &traits;
        r.hasFilter = static_cast<bool>(traits.warpFilter);
        r.warpSynchronous = traits.warpSynchronous;
        if (traits.warpFn) {
            r.warpFn = traits.warpFn;
            r.warpCtx = traits.warpCtx;
        } else if (traits.warpHandler) {
            // Trampoline over the std::function form: the context is
            // the function object itself, which outlives the records
            // (it lives in the traits the runtime owns).
            r.warpFn = [](const void *ctx, const WarpHandlerEnv &we) {
                (*static_cast<const WarpHandler *>(ctx))(we);
            };
            r.warpCtx = &traits.warpHandler;
        }
        // A null handler (metrics-only dispatch) always qualifies;
        // otherwise the handler must be reentrant-safe and, when
        // warp-synchronous, supply a warp-level body (there are no
        // fibers to rendezvous through inline).
        r.inlineOk = !r.handler ||
                     (traits.reentrantSafe &&
                      (!traits.warpSynchronous || r.warpFn != nullptr));
        records_.push_back(r);
    }
    records_dirty_ = false;
}

const SiteDispatchRecord &
SassiRuntime::record(int32_t site_key)
{
    // Dirty only between registration and the next launch; launches
    // are serialized, so a rebuild here never races a worker.
    if (records_dirty_ || records_.size() != sites_.size())
        prepareLaunch();
    return records_.at(static_cast<size_t>(site_key));
}

void
SassiRuntime::instrument(const InstrumentOptions &opts)
{
    panic_if(instrumented_, "module instrumented twice through the same "
             "runtime");
    instrumented_ = true;
    opts_ = opts;
    instrumentModule(dev_.module(), opts, *this);

    static_metrics_.counter("core/sites/total") = sites_.size();
    for (const SiteInfo &s : sites_) {
        static_metrics_.inc(std::string("core/sites/") +
                            flavorName(s.flavor));
        uint64_t slots = static_cast<uint64_t>(popc(s.spillMask));
        static_metrics_.counter("core/static/spill_slots") += slots;
        static_metrics_.counter("core/static/spill_bytes") +=
            slots * 4;
        if (s.persistentSpills)
            static_metrics_.inc("core/static/persistent_spill_sites");
    }
}

void
SassiRuntime::dispatch(simt::Executor &exec, simt::Warp &warp,
                       int32_t site_key)
{
    const SiteDispatchRecord &rec = record(site_key);
    const SiteInfo &site = *rec.site;
    exec.chargeHandlerCost(opts_.handlerCostInstrs);

    // Dynamic per-site counts go into the worker's launch-registry
    // shard, so they merge deterministically like everything else.
    noteDispatch(exec, metricsCache(exec, sites_.size()), site,
                 site_key, warp.activeMask);

    if (!rec.handler)
        return;
    const Handler &handler = *rec.handler;
    const HandlerTraits &traits = *rec.traits;
    if (rec.hasFilter && !traits.warpFilter(exec, warp, site))
        return;

    // One fiber group per OS thread: parallel CTA workers dispatch
    // concurrently, and ucontext fiber state must never be shared
    // (or migrated) across threads. The dispatch state is likewise
    // thread-local so its 32 lane environments (and the lane list)
    // are allocated once per thread, not once per site call;
    // dispatches never nest (handlers are host closures).
    static thread_local FiberGroup fibers;
    static thread_local DispatchState ds_storage;
    static thread_local std::vector<int> lanes_storage;

    DispatchState &ds = ds_storage;
    ds.exec = &exec;
    ds.warp = &warp;
    ds.site = &site;
    ds.activeMask = warp.activeMask;
    ds.fibers = &fibers;
    ds.faulted = false;
    if (ds.envs.size() != static_cast<size_t>(sass::WarpSize))
        ds.envs.resize(sass::WarpSize); // Sized once per thread.

    std::vector<int> &lanes = lanes_storage;
    lanes.clear();
    for (int lane = 0; lane < sass::WarpSize; ++lane) {
        if (!(warp.activeMask & (1u << lane)))
            continue;
        lanes.push_back(lane);

        // The injected ABI sequence passed the bp pointer in R4:R5
        // (second pointer, aux block, in R6:R7 — it is bp + 0x60, so
        // the frame base is all the views need).
        uint64_t frame =
            makeU64(warp.reg(lane, sass::abi::Arg0Lo),
                    warp.reg(lane, sass::abi::Arg0Lo + 1));

        ds.envs[static_cast<size_t>(lane)].bind(exec, warp, lane, site,
                                                frame, nullptr);
    }

    // Handler wall-clock goes to the timeline only — never into the
    // registry, which must stay thread-count-invariant.
    Trace &trace = Trace::global();
    const bool traced = trace.enabled();
    const uint64_t t0 = traced ? trace.nowNs() : 0;

    tl_dispatch = &ds;
    if (traits.warpSynchronous) {
        fibers.run(lanes, [&](int lane) {
            try {
                handler(ds.envs[static_cast<size_t>(lane)]);
            } catch (const simt::SimFault &f) {
                // Never unwind across the fiber boundary; rethrow
                // after the fiber group drains.
                if (!ds.faulted) {
                    ds.faulted = true;
                    ds.fault = f;
                }
            }
        });
    } else {
        // Fast path for handlers with no warp-wide intrinsics:
        // iterate the lanes directly.
        try {
            for (int lane : lanes)
                handler(ds.envs[static_cast<size_t>(lane)]);
        } catch (const simt::SimFault &f) {
            ds.faulted = true;
            ds.fault = f;
        }
    }
    tl_dispatch = nullptr;

    if (traced) {
        trace.complete(
            detail::strFormat("%s@%d %s", site.kernelName.c_str(),
                              site.origPc, flavorName(site.flavor)),
            "handler", exec.traceTid(), t0, trace.nowNs() - t0,
            {{"site", static_cast<uint64_t>(site_key)},
             {"lanes", static_cast<uint64_t>(lanes.size())}});
    }

    if (ds.faulted)
        throw ds.fault;
}

bool
SassiRuntime::inlineDispatchable(int32_t site_key)
{
    return record(site_key).inlineOk;
}

bool
SassiRuntime::dispatchInline(simt::Executor &exec, simt::Warp &warp,
                             int32_t site_key,
                             const uint64_t *frame_addr,
                             uint8_t *const *frame_host)
{
    // Mirrors dispatch() observationally: identical handler cost,
    // identical registry updates (same precomputed keys), identical
    // handler effects and fault surfacing — minus the fiber group,
    // which is the entire point. The executor's fused-site path only
    // calls this after inlineDispatchable() said yes.
    const SiteDispatchRecord &rec = record(site_key);
    const SiteInfo &site = *rec.site;
    exec.chargeHandlerCost(opts_.handlerCostInstrs);

    noteDispatch(exec, metricsCache(exec, sites_.size()), site,
                 site_key, warp.activeMask);

    if (!rec.handler)
        return false;
    const Handler &handler = *rec.handler;
    if (rec.hasFilter &&
        !rec.traits->warpFilter(exec, warp, site))
        return false;

    static thread_local DispatchState ds_storage;
    static thread_local ArenaPool arena_pool;
    DispatchState &ds = ds_storage;
    EnvArena &arena =
        arena_pool.at(static_cast<size_t>(site_key),
                      static_cast<size_t>(warp.rank));
    ds.exec = &exec;
    ds.warp = &warp;
    ds.site = &site;
    ds.activeMask = warp.activeMask;
    ds.fibers = nullptr; // Inline: warp intrinsics must not be used.
    ds.frameWritten = false;
    ds.faulted = false;

    if (arena.site != &site || arena.exec != &exec ||
        arena.warp != &warp || arena.seq != exec.launchSeq() ||
        arena.cta != exec.ctaLinear()) {
        arena.site = &site;
        arena.exec = &exec;
        arena.warp = &warp;
        arena.seq = exec.launchSeq();
        arena.cta = exec.ctaLinear();
        arena.boundMask = 0;
    }
    for (int lane = 0; lane < sass::WarpSize; ++lane) {
        uint32_t bit = 1u << lane;
        if (!(warp.activeMask & bit))
            continue;
        // The fused path hands the frame's generic address and host
        // pointer directly — the ABI argument registers have not
        // been written (their L2G is replayed with the rest of the
        // epilogue effects after the handler returns).
        HandlerEnv &env = arena.envs[static_cast<size_t>(lane)];
        if (arena.boundMask & bit) {
            if (arena.frames[static_cast<size_t>(lane)] !=
                frame_addr[lane]) {
                env.rebindFrame(frame_addr[lane], frame_host[lane]);
                arena.frames[static_cast<size_t>(lane)] =
                    frame_addr[lane];
            }
        } else {
            env.bind(exec, warp, lane, site, frame_addr[lane],
                     frame_host[lane]);
            arena.frames[static_cast<size_t>(lane)] =
                frame_addr[lane];
            arena.boundMask |= bit;
        }
    }

    Trace &trace = Trace::global();
    const bool traced = trace.enabled();
    const uint64_t t0 = traced ? trace.nowNs() : 0;

    tl_dispatch = &ds;
    try {
        // Prefer the warp-level body whenever one is provided (even
        // for lane-iterating handlers): its contract is observational
        // identity, and one call per warp beats 32.
        if (rec.warpFn) {
            WarpHandlerEnv we;
            we.envs = arena.envs.data();
            we.activeMask = ds.activeMask;
            rec.warpFn(rec.warpCtx, we);
        } else {
            for (int lane = 0; lane < sass::WarpSize; ++lane) {
                if (warp.activeMask & (1u << lane))
                    handler(arena.envs[static_cast<size_t>(lane)]);
            }
        }
    } catch (const simt::SimFault &f) {
        ds.faulted = true;
        ds.fault = f;
    }
    tl_dispatch = nullptr;

    if (traced) {
        trace.complete(
            detail::strFormat("%s@%d %s", site.kernelName.c_str(),
                              site.origPc, flavorName(site.flavor)),
            "handler", exec.traceTid(), t0, trace.nowNs() - t0,
            {{"site", static_cast<uint64_t>(site_key)},
             {"lanes", static_cast<uint64_t>(popc(warp.activeMask))}});
    }

    if (ds.faulted)
        throw ds.fault;
    return ds.frameWritten;
}

} // namespace sassi::core
