/**
 * @file
 * Static metadata of one instrumentation site.
 *
 * The SASSI pass records one SiteInfo per injected handler call.
 * The JCAL trampoline target encodes the site's index, so at
 * dispatch time the runtime has the original instruction, the spill
 * mask, and which parameter blocks the injected code materialized —
 * exactly the static knowledge the real SASSI bakes into its
 * injected sequences.
 */

#ifndef SASSI_CORE_SITE_H
#define SASSI_CORE_SITE_H

#include <cstdint>
#include <string>

#include "sass/instr.h"

namespace sassi::core {

/** Where a site sits relative to its instruction. */
enum class SiteFlavor {
    Before,      //!< Before one instruction.
    After,       //!< After one instruction (never branches/jumps).
    KernelEntry, //!< At kernel entry.
    KernelExit,  //!< Immediately before an EXIT.
    BlockHeader, //!< At a basic-block header.
};

/**
 * Frame layout of the stack-allocated parameter area, matching the
 * paper's Figure 2 offsets. The injected prologue allocates
 * FrameBytes on the thread stack (IADD R1, R1, -FrameBytes) and
 * fills these slots with STL stores.
 */
namespace frame {
constexpr int64_t Id = 0x00;              //!< SASSIBeforeParams.id
constexpr int64_t InstrWillExecute = 0x04;
constexpr int64_t FnAddr = 0x08;
constexpr int64_t InsOffset = 0x0c;
constexpr int64_t PRSpill = 0x10;
constexpr int64_t CCSpill = 0x14;
constexpr int64_t GPRSpill = 0x18;        //!< 16 slots, 4 bytes each.
constexpr int64_t InsEncoding = 0x58;
constexpr int64_t GPRSpillMask = 0x5c;    //!< Which slots are valid.

/** SASSIMemoryParams / SASSICondBranchParams block. */
constexpr int64_t Aux = 0x60;
constexpr int64_t MemAddress = Aux + 0x00;   //!< int64
constexpr int64_t MemProperties = Aux + 0x08;
constexpr int64_t MemWidth = Aux + 0x0c;
constexpr int64_t MemDomain = Aux + 0x10;

constexpr int64_t BrDirection = Aux + 0x00;  //!< this lane will take
constexpr int64_t BrTarget = Aux + 0x04;     //!< taken-path PC
constexpr int64_t BrFallthrough = Aux + 0x08;
constexpr int64_t BrIsConditional = Aux + 0x0c;

/** SASSIRegisterParams block. */
constexpr int64_t Reg = 0x80;
constexpr int64_t RegNumDsts = Reg + 0x00;
constexpr int64_t RegIds = Reg + 0x04;       //!< 4 slots, 4 bytes.
constexpr int64_t RegPredMask = Reg + 0x14;  //!< dst predicate mask.
constexpr int64_t RegWritesCC = Reg + 0x18;

/** Extended spill slots for R16..R31 (used only when the handler
 *  register cap is raised above the ABI minimum in ablations). */
constexpr int64_t ExtGPRSpill = 0xa0;

/** Total stack frame the prologue allocates. */
constexpr int64_t FrameBytes = 0xe0;

/** Base of the persistent spill region (absolute local offsets)
 *  used by the elideRedundantSpills optimization. */
constexpr int64_t PersistBase = 0x0;

/** Size of the persistent spill region (32 GPR slots). */
constexpr int64_t PersistBytes = 0x80;

/** @return the frame offset of register r's spill slot. */
constexpr int64_t
gprSpillSlot(int r)
{
    return r < 16 ? GPRSpill + 4 * r : ExtGPRSpill + 4 * (r - 16);
}

/** Memory properties bits. */
constexpr uint32_t PropLoad = 1;
constexpr uint32_t PropStore = 2;
constexpr uint32_t PropAtomic = 4;
} // namespace frame

/** Static description of one instrumentation site. */
struct SiteInfo
{
    SiteFlavor flavor = SiteFlavor::Before;

    /** Kernel the site lives in. */
    std::string kernelName;

    /** Pre-instrumentation instruction index (stable PC). */
    int32_t origPc = 0;

    /** Copy of the original instruction at the site. */
    sass::Instruction instr;

    /** Kernel pseudo function address. */
    int32_t fnAddr = 0;

    /** Which of GPRSpill[0..15] the prologue filled. */
    uint32_t spillMask = 0;

    /** Spills live in the persistent region, not the frame
     *  (elideRedundantSpills mode). */
    bool persistentSpills = false;

    /** The injected code materialized SASSIMemoryParams. */
    bool hasMemParams = false;

    /** The injected code materialized SASSICondBranchParams. */
    bool hasBranchParams = false;

    /** The injected code materialized SASSIRegisterParams. */
    bool hasRegParams = false;

    /**
     * Launch-registry keys, precomputed by SassiRuntime::addSite so
     * both dispatch paths (fiber and inline) bump the exact same
     * strings without per-dispatch formatting.
     */
    std::string metricCalls;  //!< "core/site/<kernel>@<pc>/calls"
    std::string metricFlavor; //!< "core/dispatch/flavor/<flavor>"
};

} // namespace sassi::core

#endif // SASSI_CORE_SITE_H
