/**
 * @file
 * A Chrome trace_event timeline emitter.
 *
 * Setting SASSI_TRACE=out.json makes the simulator record CTA spans
 * (one track per worker thread) and handler-call slices, and write
 * them at process exit as Chrome's trace_event JSON "object format"
 * — load the file in chrome://tracing or https://ui.perfetto.dev.
 *
 * Unlike the metrics registry, the timeline deliberately records
 * wall-clock time: it exists to show where real time went, so its
 * contents vary run to run and never feed determinism-checked
 * outputs. Recording is a mutex-guarded vector append; the
 * `enabled()` fast path is a relaxed atomic load so an un-traced run
 * pays one branch per candidate event.
 */

#ifndef SASSI_UTIL_TRACE_H
#define SASSI_UTIL_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sassi {

/** Process-wide collector of trace_event complete ("X") events. */
class Trace
{
  public:
    /**
     * The singleton. First use reads SASSI_TRACE from the
     * environment; when set and non-empty, tracing starts and the
     * file is written at process exit (or at an explicit end()).
     */
    static Trace &global();

    /** @return true when events are being collected. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Start collecting, to be written to path. Used by tests and
     * tools; SASSI_TRACE goes through here too. Resets the clock
     * origin and drops any buffered events.
     */
    void begin(const std::string &path);

    /** Write the collected events and stop. No-op when disabled. */
    void end();

    /** Nanoseconds since begin() — timestamp for complete(). */
    uint64_t nowNs() const;

    /**
     * Record a complete event: `name` ran on track `tid` from
     * start_ns for dur_ns. args become the event's "args" object.
     */
    void complete(
        std::string name, const char *category, int tid,
        uint64_t start_ns, uint64_t dur_ns,
        std::vector<std::pair<std::string, uint64_t>> args = {});

    /** @return events recorded since begin() (for tests). */
    size_t eventCount() const;

  private:
    Trace();

    struct Event
    {
        std::string name;
        const char *category;
        int tid;
        uint64_t startNs;
        uint64_t durNs;
        std::vector<std::pair<std::string, uint64_t>> args;
    };

    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::string path_;
    std::chrono::steady_clock::time_point origin_;
    std::vector<Event> events_;
};

} // namespace sassi

#endif // SASSI_UTIL_TRACE_H
