#include "util/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.h"

namespace sassi {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "table row arity %zu != header arity %zu", cells.size(),
             headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << '\n';
    };
    emit(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
fmtCount(double v)
{
    std::ostringstream ss;
    ss << std::fixed;
    if (v >= 1e9)
        ss << std::setprecision(2) << v / 1e9 << " B";
    else if (v >= 1e6)
        ss << std::setprecision(2) << v / 1e6 << " M";
    else if (v >= 1e3)
        ss << std::setprecision(2) << v / 1e3 << " K";
    else
        ss << std::setprecision(0) << v;
    return ss.str();
}

std::string
fmtPercent(double numer, double denom, int precision)
{
    double pct = denom == 0 ? 0.0 : 100.0 * numer / denom;
    return fmtDouble(pct, precision);
}

} // namespace sassi
