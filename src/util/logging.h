/**
 * @file
 * Logging and error-reporting facilities.
 *
 * Follows the gem5 convention: panic() is reserved for internal
 * invariant violations (bugs in this codebase), fatal() for user
 * errors that make continuing impossible, warn()/inform() for
 * diagnostics that do not stop the simulation.
 */

#ifndef SASSI_UTIL_LOGGING_H
#define SASSI_UTIL_LOGGING_H

#include <cstdarg>
#include <string>

namespace sassi {

/** Severity levels for log messages. */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail {

/** printf-style formatting into a std::string. */
std::string vstrFormat(const char *fmt, va_list ap);

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Emit a log message. Fatal exits with code 1; Panic aborts.
 *
 * @param level Message severity.
 * @param file Source file of the call site.
 * @param line Source line of the call site.
 * @param msg Preformatted message body.
 */
[[noreturn]] void logFail(LogLevel level, const char *file, int line,
                          const std::string &msg);

/** Emit a non-fatal log message. */
void logNote(LogLevel level, const char *file, int line,
             const std::string &msg);

} // namespace detail

/** Toggle inform() output (benches silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verbose();

} // namespace sassi

/** Internal invariant violation: print and abort. */
#define panic(...)                                                        \
    ::sassi::detail::logFail(::sassi::LogLevel::Panic, __FILE__,          \
                             __LINE__, ::sassi::detail::strFormat(__VA_ARGS__))

/** Unrecoverable user error: print and exit(1). */
#define fatal(...)                                                        \
    ::sassi::detail::logFail(::sassi::LogLevel::Fatal, __FILE__,          \
                             __LINE__, ::sassi::detail::strFormat(__VA_ARGS__))

/** Suspicious condition worth telling the user about. */
#define warn(...)                                                         \
    ::sassi::detail::logNote(::sassi::LogLevel::Warn, __FILE__,           \
                             __LINE__, ::sassi::detail::strFormat(__VA_ARGS__))

/** Normal operating status message. */
#define inform(...)                                                       \
    ::sassi::detail::logNote(::sassi::LogLevel::Inform, __FILE__,         \
                             __LINE__, ::sassi::detail::strFormat(__VA_ARGS__))

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic(__VA_ARGS__);                                           \
    } while (0)

/** fatal() unless the condition holds. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(__VA_ARGS__);                                           \
    } while (0)

#endif // SASSI_UTIL_LOGGING_H
