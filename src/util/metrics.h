/**
 * @file
 * The launch-scoped metrics registry: named counters and power-of-two
 * histograms behind the simulator's observability surface (the
 * SASSI-style "hardware-rate counters" of the paper's case studies,
 * generalized into one substrate).
 *
 * Concurrency model (mirrors Executor's CTA sharding): there is no
 * locking anywhere. Each worker owns a private Metrics shard and bumps
 * plain uint64 counters through cached pointers; at the end of a
 * launch the coordinator merges shards in worker order. Every metric
 * is a sum (or a bucket-wise sum plus min/max), so merged values are
 * independent of both worker count and execution timing — the same
 * invariance guarantee LaunchStats established for the parallel
 * executor, extended to arbitrarily named metrics.
 *
 * Naming scheme: hierarchical slash-separated paths, lowest level
 * first by subsystem — "simt/...", "core/...", "mem/...",
 * "handlers/<tool>/...". Registries iterate in lexicographic name
 * order, so any rendering (tables, JSON) is deterministic.
 */

#ifndef SASSI_UTIL_METRICS_H
#define SASSI_UTIL_METRICS_H

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace sassi {

/**
 * A power-of-two-bucketed histogram of uint64 observations.
 * Bucket 0 holds the value 0; bucket i (i >= 1) holds values in
 * [2^(i-1), 2^i). Exact count/sum/min/max ride along, so means are
 * exact even though the distribution is bucketed.
 */
struct MetricHistogram
{
    static constexpr int NumBuckets = 65;

    std::array<uint64_t, NumBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = UINT64_MAX; //!< Meaningless until count > 0.
    uint64_t max = 0;

    /** Record one observation. */
    void observe(uint64_t v);

    /** Bucket-wise sum; min/max/count/sum combine exactly. */
    void merge(const MetricHistogram &o);

    /** @return the exact mean of all observations (0 when empty). */
    double
    mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }

    /** @return the bucket index a value lands in. */
    static int bucketOf(uint64_t v);
};

/**
 * One registry (or one worker's shard of a registry): counters and
 * histograms keyed by hierarchical name.
 */
class Metrics
{
  public:
    using CounterMap = std::map<std::string, uint64_t, std::less<>>;
    using HistogramMap =
        std::map<std::string, MetricHistogram, std::less<>>;

    /**
     * The counter registered under name, created at zero on first
     * use. The reference is stable for the life of the registry, so
     * hot paths look a counter up once and bump through the
     * reference.
     */
    uint64_t &counter(std::string_view name);

    /** Add delta (default 1) to the named counter. */
    void
    inc(std::string_view name, uint64_t delta = 1)
    {
        counter(name) += delta;
    }

    /** The histogram registered under name (stable reference). */
    MetricHistogram &histogram(std::string_view name);

    /** @return a counter's value, 0 when it was never touched. */
    uint64_t counterValue(std::string_view name) const;

    /** @return a histogram by name, nullptr when absent. */
    const MetricHistogram *findHistogram(std::string_view name) const;

    /**
     * Merge another registry in: counters sum, histograms merge.
     * Sums are commutative, so any merge order yields the same
     * registry; callers still merge in worker order so that future
     * non-commutative metrics cannot silently break invariance.
     */
    void merge(const Metrics &o);

    /** Drop every metric. */
    void clear();

    /** @return true when no metric was ever registered. */
    bool
    empty() const
    {
        return counters_.empty() && histograms_.empty();
    }

    /** @return all counters, in lexicographic name order. */
    const CounterMap &counters() const { return counters_; }

    /** @return all histograms, in lexicographic name order. */
    const HistogramMap &histograms() const { return histograms_; }

    /**
     * Canonical text rendering, one metric per line in name order —
     * the determinism tests compare registries through this, and
     * profiling tools parse it.
     */
    std::string serialize() const;

  private:
    CounterMap counters_;
    HistogramMap histograms_;
};

} // namespace sassi

#endif // SASSI_UTIL_METRICS_H
