#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace sassi {

namespace {
bool g_verbose = true;
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

namespace detail {

std::string
vstrFormat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
strFormat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrFormat(fmt, ap);
    va_end(ap);
    return out;
}

namespace {

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
logFail(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", levelName(level), msg.c_str(),
                 file, line);
    std::fflush(stderr);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

void
logNote(LogLevel level, const char *file, int line, const std::string &msg)
{
    if (level == LogLevel::Inform && !g_verbose)
        return;
    if (level == LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
    else
        std::fprintf(stderr, "%s: %s (%s:%d)\n", levelName(level),
                     msg.c_str(), file, line);
}

} // namespace detail
} // namespace sassi
