#include "trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "logging.h"

namespace sassi {

Trace &
Trace::global()
{
    // Intentionally leaked: the SASSI_TRACE path flushes from an
    // atexit handler registered during construction, which would
    // otherwise run after a function-local static's destructor.
    static Trace *instance = new Trace;
    return *instance;
}

Trace::Trace()
{
    const char *path = std::getenv("SASSI_TRACE");
    if (path && *path) {
        begin(path);
        // The simulator has no single shutdown point (benches, tests
        // and examples all exit on their own terms), so the
        // env-requested file is flushed at process exit.
        std::atexit([] { Trace::global().end(); });
    }
}

void
Trace::begin(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    path_ = path;
    origin_ = std::chrono::steady_clock::now();
    events_.clear();
    enabled_.store(true, std::memory_order_relaxed);
}

uint64_t
Trace::nowNs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
}

void
Trace::complete(std::string name, const char *category, int tid,
                uint64_t start_ns, uint64_t dur_ns,
                std::vector<std::pair<std::string, uint64_t>> args)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(Event{std::move(name), category, tid, start_ns,
                            dur_ns, std::move(args)});
}

size_t
Trace::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

namespace {

/** Escape a string for a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        if (ch == '"' || ch == '\\') {
            out += '\\';
            out += ch;
        } else if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", ch);
            out += buf;
        } else {
            out += ch;
        }
    }
    return out;
}

/** Nanoseconds to the microsecond "ts"/"dur" fields, 3 decimals. */
std::string
microseconds(uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return buf;
}

} // namespace

void
Trace::end()
{
    std::vector<Event> events;
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!enabled_.load(std::memory_order_relaxed))
            return;
        enabled_.store(false, std::memory_order_relaxed);
        events.swap(events_);
        path.swap(path_);
    }

    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("trace: cannot write %s", path.c_str());
        return;
    }
    out << "{\"traceEvents\": [";
    for (size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        out << (i ? ",\n  " : "\n  ");
        out << "{\"name\": \"" << jsonEscape(e.name) << "\", "
            << "\"cat\": \"" << e.category << "\", "
            << "\"ph\": \"X\", "
            << "\"ts\": " << microseconds(e.startNs) << ", "
            << "\"dur\": " << microseconds(e.durNs) << ", "
            << "\"pid\": 1, \"tid\": " << e.tid;
        if (!e.args.empty()) {
            out << ", \"args\": {";
            for (size_t a = 0; a < e.args.size(); ++a)
                out << (a ? ", " : "") << "\""
                    << jsonEscape(e.args[a].first)
                    << "\": " << e.args[a].second;
            out << "}";
        }
        out << "}";
    }
    out << (events.empty() ? "]" : "\n]")
        << ", \"displayTimeUnit\": \"ms\"}\n";
}

} // namespace sassi
