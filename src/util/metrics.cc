#include "metrics.h"

#include <algorithm>
#include <sstream>

namespace sassi {

int
MetricHistogram::bucketOf(uint64_t v)
{
    if (v == 0)
        return 0;
    return 64 - __builtin_clzll(v);
}

void
MetricHistogram::observe(uint64_t v)
{
    ++buckets[bucketOf(v)];
    ++count;
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
}

void
MetricHistogram::merge(const MetricHistogram &o)
{
    for (int i = 0; i < NumBuckets; ++i)
        buckets[i] += o.buckets[i];
    count += o.count;
    sum += o.sum;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
}

uint64_t &
Metrics::counter(std::string_view name)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(std::string(name), 0).first;
    return it->second;
}

MetricHistogram &
Metrics::histogram(std::string_view name)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(std::string(name), MetricHistogram{})
                 .first;
    return it->second;
}

uint64_t
Metrics::counterValue(std::string_view name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

const MetricHistogram *
Metrics::findHistogram(std::string_view name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
Metrics::merge(const Metrics &o)
{
    for (const auto &[name, value] : o.counters_)
        counter(name) += value;
    for (const auto &[name, hist] : o.histograms_)
        histogram(name).merge(hist);
}

void
Metrics::clear()
{
    counters_.clear();
    histograms_.clear();
}

std::string
Metrics::serialize() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters_)
        os << name << " = " << value << "\n";
    for (const auto &[name, h] : histograms_) {
        os << name << " : count=" << h.count << " sum=" << h.sum;
        if (h.count)
            os << " min=" << h.min << " max=" << h.max;
        os << " buckets=[";
        // Buckets past the max observation are all zero; stop at the
        // last non-empty one to keep the rendering readable.
        int last = -1;
        for (int i = 0; i < MetricHistogram::NumBuckets; ++i)
            if (h.buckets[i])
                last = i;
        for (int i = 0; i <= last; ++i)
            os << (i ? "," : "") << h.buckets[i];
        os << "]\n";
    }
    return os.str();
}

} // namespace sassi
