#include "util/fiber.h"

#include "util/logging.h"

namespace sassi {

namespace {

/** The group whose fibers are currently executing on this thread. */
thread_local FiberGroup *tl_current_group = nullptr;

} // namespace

FiberGroup *
FiberGroup::current()
{
    return tl_current_group;
}

FiberGroup::FiberGroup(int max_lanes, size_t stack_bytes)
    : lanes_(static_cast<size_t>(max_lanes))
{
    for (Lane &lane : lanes_)
        lane.stack.resize(stack_bytes);
}

FiberGroup::~FiberGroup() = default;

void
FiberGroup::trampoline(unsigned hi, unsigned lo)
{
    auto ptr = (static_cast<uintptr_t>(hi) << 32) | lo;
    auto *group = reinterpret_cast<FiberGroup *>(ptr);
    group->laneMain(group->current_lane_);
}

void
FiberGroup::laneMain(int lane)
{
    (*body_)(lane);
    lanes_[static_cast<size_t>(lane)].state = LaneState::Done;
    // Fall through to uc_link, which returns to the scheduler.
}

void
FiberGroup::switchToScheduler()
{
    int lane = current_lane_;
    current_lane_ = -1;
    swapcontext(&lanes_[static_cast<size_t>(lane)].ctx, &sched_ctx_);
}

uint64_t
FiberGroup::barrier(uint64_t value, const Reducer &reducer)
{
    panic_if(current_lane_ < 0,
             "warp intrinsic called outside handler execution");
    Lane &lane = lanes_[static_cast<size_t>(current_lane_)];
    lane.pending_value = value;
    lane.state = LaneState::Blocked;
    if (!reducer_armed_) {
        pending_reducer_ = reducer;
        reducer_armed_ = true;
    }
    switchToScheduler();
    return lane.barrier_result;
}

void
FiberGroup::run(const std::vector<int> &lanes,
                const std::function<void(int)> &body)
{
    panic_if(tl_current_group != nullptr,
             "nested FiberGroup::run is not supported");
    panic_if(lanes.empty(), "FiberGroup::run with no lanes");

    tl_current_group = this;
    body_ = &body;
    live_lanes_ = lanes;

    auto self = reinterpret_cast<uintptr_t>(this);
    for (int id : live_lanes_) {
        Lane &lane = lanes_.at(static_cast<size_t>(id));
        getcontext(&lane.ctx);
        lane.ctx.uc_stack.ss_sp = lane.stack.data();
        lane.ctx.uc_stack.ss_size = lane.stack.size();
        lane.ctx.uc_link = &sched_ctx_;
        makecontext(&lane.ctx, reinterpret_cast<void (*)()>(&trampoline), 2,
                    static_cast<unsigned>(self >> 32),
                    static_cast<unsigned>(self & 0xffffffffu));
        lane.state = LaneState::Runnable;
    }

    for (;;) {
        bool any_ran = false;
        for (int id : live_lanes_) {
            Lane &lane = lanes_[static_cast<size_t>(id)];
            if (lane.state != LaneState::Runnable)
                continue;
            any_ran = true;
            current_lane_ = id;
            swapcontext(&sched_ctx_, &lane.ctx);
            current_lane_ = -1;
        }
        if (any_ran)
            continue;

        // No lane is runnable: either everyone finished, or the
        // blocked lanes form a complete rendezvous.
        std::vector<uint64_t> vals;
        std::vector<int> blocked;
        bool all_done = true;
        for (int id : live_lanes_) {
            Lane &lane = lanes_[static_cast<size_t>(id)];
            if (lane.state == LaneState::Blocked) {
                vals.push_back(lane.pending_value);
                blocked.push_back(id);
                all_done = false;
            } else if (lane.state != LaneState::Done) {
                all_done = false;
            }
        }
        if (all_done)
            break;
        panic_if(blocked.empty(), "fiber scheduler wedged: no lane "
                 "runnable, blocked, or done");
        panic_if(!reducer_armed_, "rendezvous without a reducer");

        std::vector<uint64_t> results(blocked.size(), 0);
        pending_reducer_(vals, blocked, results);
        reducer_armed_ = false;
        pending_reducer_ = nullptr;
        for (size_t i = 0; i < blocked.size(); ++i) {
            Lane &lane = lanes_[static_cast<size_t>(blocked[i])];
            lane.barrier_result = results[i];
            lane.state = LaneState::Runnable;
        }
    }

    body_ = nullptr;
    live_lanes_.clear();
    tl_current_group = nullptr;
}

} // namespace sassi
