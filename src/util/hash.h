/**
 * @file
 * Shared deterministic hashing primitives.
 *
 * Content identity shows up all over the reproduction — the UopCache
 * keys compiled micro-programs by kernel fingerprint, the fuzzer
 * dedups corpus entries and names reproducer files by program
 * content, and coverage signatures fold feature sets into stable
 * 64-bit keys. They all need the same property: a hash that is a
 * pure function of explicit field values (never raw struct bytes —
 * padding is indeterminate) and identical across hosts, build types,
 * and thread counts. FNV-1a provides that with no dependencies.
 */

#ifndef SASSI_UTIL_HASH_H
#define SASSI_UTIL_HASH_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sassi {

/** FNV-1a offset basis. */
constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;

/** FNV-1a prime. */
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/** Fold a byte range into an FNV-1a state. */
inline uint64_t
fnv1a(const void *data, size_t n, uint64_t h = kFnvBasis)
{
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

/** Fold a string into an FNV-1a state. */
inline uint64_t
fnv1a(std::string_view s, uint64_t h = kFnvBasis)
{
    return fnv1a(s.data(), s.size(), h);
}

/** Fold one 64-bit value, byte by byte, into an FNV-1a state. */
inline uint64_t
fnv1aU64(uint64_t v, uint64_t h = kFnvBasis)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace sassi

#endif // SASSI_UTIL_HASH_H
