/**
 * @file
 * Small bit-manipulation helpers shared by the ISA, the simulator,
 * and the handler runtime. These mirror the CUDA intrinsics the
 * paper's handlers rely on (__popc, __ffs).
 */

#ifndef SASSI_UTIL_BITOPS_H
#define SASSI_UTIL_BITOPS_H

#include <bit>
#include <cstdint>

namespace sassi {

/** Population count, i.e.\ CUDA's __popc. */
inline int
popc(uint32_t x)
{
    return std::popcount(x);
}

/**
 * Find-first-set, i.e.\ CUDA's __ffs: 1-based index of the least
 * significant set bit, or 0 when no bit is set.
 */
inline int
ffs(uint32_t x)
{
    return x == 0 ? 0 : std::countr_zero(x) + 1;
}

/** Extract bits [lo, lo+len) of a word. */
inline uint32_t
bits(uint32_t word, int lo, int len)
{
    if (len >= 32)
        return word >> lo;
    return (word >> lo) & ((1u << len) - 1);
}

/** Insert val into bits [lo, lo+len) of word. */
inline uint32_t
insertBits(uint32_t word, int lo, int len, uint32_t val)
{
    uint32_t mask = (len >= 32 ? ~0u : ((1u << len) - 1)) << lo;
    return (word & ~mask) | ((val << lo) & mask);
}

/** Build a 64-bit value from two 32-bit halves. */
inline uint64_t
makeU64(uint32_t lo, uint32_t hi)
{
    return (static_cast<uint64_t>(hi) << 32) | lo;
}

/** Low 32 bits of a 64-bit value. */
inline uint32_t
lo32(uint64_t v)
{
    return static_cast<uint32_t>(v);
}

/** High 32 bits of a 64-bit value. */
inline uint32_t
hi32(uint64_t v)
{
    return static_cast<uint32_t>(v >> 32);
}

} // namespace sassi

#endif // SASSI_UTIL_BITOPS_H
