/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic pieces of the reproduction (dataset generators, the
 * error-injection site selector) draw from this xorshift64* generator
 * so that every experiment is exactly repeatable from a seed.
 */

#ifndef SASSI_UTIL_RNG_H
#define SASSI_UTIL_RNG_H

#include <cstdint>

namespace sassi {

/** xorshift64* pseudo-random generator. */
class Rng
{
  public:
    /** Construct from a seed; zero seeds are remapped to a constant. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** @return the next raw 64-bit sample. */
    uint64_t
    next()
    {
        uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** @return a uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    nextBelow(uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a uniform integer in [lo, hi]. */
    int64_t
    nextRange(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(nextBelow(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** @return a uniform float in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** @return a uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(nextDouble());
    }

    /** @return true with probability percent/100. */
    bool
    chance(uint32_t percent)
    {
        return nextBelow(100) < percent;
    }

    /**
     * Derive an independent child generator for the given stream id
     * without advancing this generator. The (state, stream) pair is
     * mixed through the splitmix64 finalizer, so child streams are
     * decorrelated from the parent and from each other; the fuzzer
     * uses one stream per generated program, making program i
     * identical no matter how many programs ran before it.
     */
    Rng
    split(uint64_t stream) const
    {
        uint64_t z = state_ + 0x9e3779b97f4a7c15ull * (stream + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        return Rng(z);
    }

  private:
    uint64_t state_;
};

} // namespace sassi

#endif // SASSI_UTIL_RNG_H
