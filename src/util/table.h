/**
 * @file
 * ASCII table and CSV emission used by the benchmark harnesses to
 * print paper-style tables and figure series.
 */

#ifndef SASSI_UTIL_TABLE_H
#define SASSI_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace sassi {

/**
 * A simple column-aligned text table. Rows are added as vectors of
 * preformatted cells; print() pads every column to its widest cell.
 */
class Table
{
  public:
    /** Construct with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render the table, column aligned, to the given stream. */
    void print(std::ostream &os) const;

    /** Render the table as CSV to the given stream. */
    void printCsv(std::ostream &os) const;

    /** @return the number of data rows. */
    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision. */
std::string fmtDouble(double v, int precision = 1);

/** Format a count with K/M suffixes, paper style (e.g.\ "3.66 M"). */
std::string fmtCount(double v);

/** Format a ratio as a percentage string. */
std::string fmtPercent(double numer, double denom, int precision = 1);

} // namespace sassi

#endif // SASSI_UTIL_TABLE_H
