/**
 * @file
 * Cooperative fibers used to execute instrumentation handlers
 * warp-synchronously.
 *
 * The paper's handlers are written in CUDA and freely use warp-wide
 * intrinsics (__ballot, __shfl, __all). Emulating that on a host CPU
 * requires every active lane of a warp to reach the intrinsic before
 * any lane can observe its result. We run each lane's handler
 * invocation on its own fiber; an intrinsic call suspends the lane
 * until all active lanes arrive, at which point the warp-wide result
 * is computed and all lanes resume.
 */

#ifndef SASSI_UTIL_FIBER_H
#define SASSI_UTIL_FIBER_H

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <vector>

namespace sassi {

/**
 * A group of cooperatively scheduled fibers with barrier-style
 * rendezvous, sized for one 32-lane warp.
 *
 * Usage: call run() with the set of participating lanes and a body.
 * Inside the body, a lane may call barrier(value) to publish a 64-bit
 * value and suspend; when every live lane has either called barrier()
 * with the same sequence number or finished, the scheduler invokes
 * the reduction callback with all published values and resumes the
 * waiting lanes, each receiving the reduction result.
 */
class FiberGroup
{
  public:
    /**
     * Per-rendezvous reduction: given the values published by the
     * blocked lanes (vals[i] came from lanes[i]), fill results[i]
     * with the value lane lanes[i] should receive. results arrives
     * pre-sized to lanes.size() and zero-filled, so reductions that
     * produce one warp-wide answer may fill every slot identically.
     */
    using Reducer = std::function<void(const std::vector<uint64_t> &vals,
                                       const std::vector<int> &lanes,
                                       std::vector<uint64_t> &results)>;

    /** Construct a group supporting up to max_lanes lanes. */
    explicit FiberGroup(int max_lanes = 32, size_t stack_bytes = 1 << 17);
    ~FiberGroup();

    FiberGroup(const FiberGroup &) = delete;
    FiberGroup &operator=(const FiberGroup &) = delete;

    /**
     * Run body(lane) on a fiber for each lane listed in lanes,
     * scheduling them in lane order and servicing rendezvous until
     * every fiber has finished.
     *
     * @param lanes Participating lane ids (ascending).
     * @param body Per-lane work; may call barrier().
     */
    void run(const std::vector<int> &lanes,
             const std::function<void(int lane)> &body);

    /**
     * Publish a value at a warp-wide rendezvous and suspend until all
     * live lanes arrive. Must only be called from inside a fiber.
     *
     * @param value The lane's contribution.
     * @param reducer Combines all contributions into the result every
     *                lane receives. All lanes must pass an equivalent
     *                reducer (the first arriving lane's is used).
     * @return The reduction result.
     */
    uint64_t barrier(uint64_t value, const Reducer &reducer);

    /** @return the lane id of the currently running fiber. */
    int currentLane() const { return current_lane_; }

    /** @return true when called from inside a fiber of this group. */
    bool inFiber() const { return current_lane_ >= 0; }

    /** @return the FiberGroup currently executing on this thread. */
    static FiberGroup *current();

  private:
    enum class LaneState { Idle, Runnable, Blocked, Done };

    struct Lane
    {
        ucontext_t ctx;
        std::vector<uint8_t> stack;
        LaneState state = LaneState::Idle;
        uint64_t pending_value = 0;
        uint64_t barrier_result = 0;
    };

    static void trampoline(unsigned hi, unsigned lo);
    void laneMain(int lane);
    void switchToScheduler();

    std::vector<Lane> lanes_;
    ucontext_t sched_ctx_;
    const std::function<void(int)> *body_ = nullptr;
    std::vector<int> live_lanes_;
    int current_lane_ = -1;
    Reducer pending_reducer_;
    bool reducer_armed_ = false;
};

} // namespace sassi

#endif // SASSI_UTIL_FIBER_H
